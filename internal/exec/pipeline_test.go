package exec

import (
	"math/rand/v2"
	"testing"

	"repro/internal/codelet"
	"repro/internal/plan"
)

// plansForSize returns the equivalence-grid plans for log-size n: the
// balanced codelet-leaved default, and for sizes that admit one a
// two-stage block plan (the shape the pipelined tier targets — a
// cache-resident block stage feeding a full-vector interleaved stage).
func plansForSize(n int) []*plan.Node {
	ps := []*plan.Node{plan.Balanced(n, plan.MaxLeafLog)}
	if n >= 15 && n-13 >= 1 && n-13 <= plan.BlockLeafMax {
		ps = append(ps, plan.MustParse(
			"split[small["+itoa(n-13)+"],small[13]]"))
	}
	return ps
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

// TestRunPipelinedBitwiseEquivalence pins the contract every parallel
// tier must honor: barrier and pipelined execution are bitwise equal to
// the sequential executor — not merely close — across sizes, plan
// shapes, variant policies, worker counts, and both element types.  Run
// under -race this doubles as the memory-model check for the
// dependency-counted scheduler.
func TestRunPipelinedBitwiseEquivalence(t *testing.T) {
	policies := []codelet.Policy{
		codelet.DefaultPolicy(),
		{StridedOnly: true},
		{ILMinS: 2},
		{ILFuse: true},
		{ILMinS: 2, ILFuse: true},
	}
	workerGrid := []int{1, 2, 3, 4, 8}
	maxN := 20
	if testing.Short() {
		maxN = 16
	}
	rng := rand.New(rand.NewPCG(8, 15))
	for n := 2; n <= maxN; n++ {
		pols, ws := policies, workerGrid
		if n >= 18 {
			// The big sizes are expensive; two policies and two worker
			// counts still cover the fused/unfused × contended/uncontended
			// corners.
			pols = []codelet.Policy{codelet.DefaultPolicy(), {ILFuse: true}}
			ws = []int{4, 8}
		}
		for _, p := range plansForSize(n) {
			for _, pol := range pols {
				sched, err := NewScheduleWith(p, pol)
				if err != nil {
					t.Fatal(err)
				}
				x64 := randomVector(1<<n, rng)
				x32 := make([]float32, 1<<n)
				for i, v := range x64 {
					x32[i] = float32(v)
				}
				want64 := append([]float64(nil), x64...)
				MustRun(sched, want64)
				want32 := append([]float32(nil), x32...)
				MustRun(sched, want32)
				for _, workers := range ws {
					for _, mode := range []ParallelMode{BarrierParallel, PipelinedParallel} {
						got64 := append([]float64(nil), x64...)
						if err := RunParallelMode(sched, got64, workers, mode); err != nil {
							t.Fatal(err)
						}
						for i := range want64 {
							if got64[i] != want64[i] {
								t.Fatalf("n=%d plan %s pol %+v workers %d mode %v: float64 index %d got %v want %v",
									n, p, pol, workers, mode, i, got64[i], want64[i])
							}
						}
						got32 := append([]float32(nil), x32...)
						if err := RunParallelMode(sched, got32, workers, mode); err != nil {
							t.Fatal(err)
						}
						for i := range want32 {
							if got32[i] != want32[i] {
								t.Fatalf("n=%d plan %s pol %+v workers %d mode %v: float32 index %d got %v want %v",
									n, p, pol, workers, mode, i, got32[i], want32[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestBuildPipePlanGeometry checks the derived window structure: window
// sizes are nondecreasing powers of two covering the vector exactly,
// every stage's chunks tile its call space, and each stage-(i+1)
// window's dependency count equals the number of stage-i windows it
// covers.
func TestBuildPipePlanGeometry(t *testing.T) {
	s := plan.NewSampler(23, plan.BlockLeafMax)
	for n := 12; n <= 20; n++ {
		for trial := 0; trial < 20; trial++ {
			p := s.Plan(n)
			sched := Compile(p)
			for _, workers := range []int{2, 4, 7} {
				pp := buildPipePlan(sched, workers)
				if pp == nil {
					if sched.NumStages() >= 2 {
						t.Fatalf("n=%d plan %s: nil pipe plan for %d stages", n, p, sched.NumStages())
					}
					continue
				}
				prevLg := 0
				wins, chunks := 0, 0
				for i, ps := range pp.stages {
					st := &sched.stages[i]
					if ps.lgWin < prevLg || ps.lgWin > n {
						t.Fatalf("n=%d plan %s stage %d: window log %d outside [%d, %d]", n, p, i, ps.lgWin, prevLg, n)
					}
					if blk := st.SLog + st.M; ps.lgWin < blk && blk <= n {
						t.Fatalf("n=%d plan %s stage %d: window 2^%d smaller than Blk 2^%d", n, p, i, ps.lgWin, blk)
					}
					if ps.numWin != 1<<uint(n-ps.lgWin) {
						t.Fatalf("n=%d plan %s stage %d: %d windows for log %d", n, p, i, ps.numWin, ps.lgWin)
					}
					if ps.numWin*ps.winCalls != st.R*st.S {
						t.Fatalf("n=%d plan %s stage %d: windows %d x %d calls != %d total",
							n, p, i, ps.numWin, ps.winCalls, st.R*st.S)
					}
					if ps.chunkCalls < 1 || ps.chunkCalls > ps.winCalls {
						t.Fatalf("n=%d plan %s stage %d: chunk %d outside [1, %d]", n, p, i, ps.chunkCalls, ps.winCalls)
					}
					if ps.chunksPerWin != (ps.winCalls+ps.chunkCalls-1)/ps.chunkCalls {
						t.Fatalf("n=%d plan %s stage %d: %d chunks per window of %d calls at chunk %d",
							n, p, i, ps.chunksPerWin, ps.winCalls, ps.chunkCalls)
					}
					if st.V == codelet.Interleaved && ps.chunkCalls > st.S && ps.chunkCalls%st.S != 0 {
						t.Fatalf("n=%d plan %s stage %d: multi-row chunk %d not row-aligned (S=%d)",
							n, p, i, ps.chunkCalls, st.S)
					}
					if i > 0 {
						if want := uint(ps.lgWin - pp.stages[i-1].lgWin); ps.depShift != want {
							t.Fatalf("n=%d plan %s stage %d: depShift %d want %d", n, p, i, ps.depShift, want)
						}
					}
					if ps.firstWin != wins || ps.firstChunk != chunks {
						t.Fatalf("n=%d plan %s stage %d: offsets (%d, %d) want (%d, %d)",
							n, p, i, ps.firstWin, ps.firstChunk, wins, chunks)
					}
					wins += ps.numWin
					chunks += ps.numWin * ps.chunksPerWin
					prevLg = ps.lgWin
				}
				if wins != pp.totalWins || chunks != pp.totalChunks {
					t.Fatalf("n=%d plan %s: totals (%d, %d) want (%d, %d)",
						n, p, wins, chunks, pp.totalWins, pp.totalChunks)
				}
			}
		}
	}
}

func TestParallelModeStrings(t *testing.T) {
	cases := []struct {
		mode ParallelMode
		s    string
	}{
		{AutoParallel, "auto"},
		{BarrierParallel, "barrier"},
		{PipelinedParallel, "pipelined"},
	}
	for _, c := range cases {
		if c.mode.String() != c.s {
			t.Fatalf("mode %d: String %q want %q", c.mode, c.mode.String(), c.s)
		}
		if m, ok := ParseParallelMode(c.s); !ok || m != c.mode {
			t.Fatalf("parse %q: (%v, %v) want (%v, true)", c.s, m, ok, c.mode)
		}
	}
	if m, ok := ParseParallelMode(""); !ok || m != AutoParallel {
		t.Fatalf("parse empty: (%v, %v) want (AutoParallel, true)", m, ok)
	}
	if _, ok := ParseParallelMode("bogus"); ok {
		t.Fatal("parse accepted bogus mode")
	}
}

func TestPickParallelMode(t *testing.T) {
	big := Compile(plan.Balanced(17, plan.MaxLeafLog))
	if got := pickParallelMode(big, 4); got != PipelinedParallel {
		t.Fatalf("big multi-stage schedule with 4 workers: %v want pipelined", got)
	}
	if got := pickParallelMode(big, 1); got != BarrierParallel {
		t.Fatalf("single worker: %v want barrier", got)
	}
	small := Compile(plan.Balanced(10, plan.MaxLeafLog))
	if got := pickParallelMode(small, 4); got != BarrierParallel {
		t.Fatalf("in-cache schedule: %v want barrier", got)
	}
	one := Compile(plan.MustParse("small[4]"))
	if got := pickParallelMode(one, 4); got != BarrierParallel {
		t.Fatalf("single-stage schedule: %v want barrier", got)
	}
}

// TestRunParallelModeAuto checks the auto dispatch stays correct at a
// size where the heuristic picks the pipelined tier.
func TestRunParallelModeAuto(t *testing.T) {
	n := 17
	rng := rand.New(rand.NewPCG(5, 6))
	sched := Compile(plan.Balanced(n, plan.MaxLeafLog))
	x := randomVector(1<<n, rng)
	want := append([]float64(nil), x...)
	MustRun(sched, want)
	got := append([]float64(nil), x...)
	if err := RunParallel(sched, got, 4); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("auto mode: index %d got %v want %v", i, got[i], want[i])
		}
	}
}
