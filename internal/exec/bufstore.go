package exec

import (
	"fmt"
	"sync"
)

// BufStore abstracts the storage a segmented schedule streams through.
// The store holds two full-length planes of the logical vector — the
// primary plane the butterfly segments read and write, and an auxiliary
// plane the transpose segments scatter into — and Flip exchanges them,
// so a blocked transpose never needs an in-place permutation.  Segmented
// schedules emit transposes in pairs, so a completed run has performed
// an even number of flips and the result always lands back in the
// original primary plane (for the in-RAM store, the caller's own slice).
//
// Implementations must support concurrent calls on disjoint ranges:
// the segmented executor streams windows and transpose tiles through a
// bounded worker pool, and two workers never touch overlapping offsets
// within one segment.
type BufStore[T Float] interface {
	// Len returns the logical vector length (the schedule size).
	Len() int

	// Read copies len(dst) elements starting at element offset off from
	// the primary plane into dst.
	Read(dst []T, off int) error

	// Write copies src into the primary plane at element offset off.
	Write(src []T, off int) error

	// WriteAux copies src into the auxiliary plane at element offset
	// off.  Transpose segments write exclusively through it.
	WriteAux(src []T, off int) error

	// Flip exchanges the primary and auxiliary planes.  It is called
	// between segments only, never concurrently with Read/Write.
	Flip() error

	// Close releases the store's resources.  Stores that persist (the
	// shard store) seal their contents; the in-RAM store verifies the
	// plane parity so a result stranded in the scratch plane is an
	// error, not silent data loss.
	Close() error
}

// sliceBacked is the optional fast-path interface of stores whose
// planes are directly addressable in RAM: the segmented executor then
// runs butterfly windows in place and transposes plane-to-plane with no
// copy through resident buffers.  Planes may be called concurrently.
type sliceBacked[T Float] interface {
	Planes() (primary, aux []T)
}

// SliceStore is the in-RAM BufStore: the caller's slice is the primary
// plane and the auxiliary plane is allocated lazily on first use (flat,
// transpose-free schedules never pay for it).  It implements the
// direct-addressing fast path, so segmented execution over a SliceStore
// does no buffer copying at all.
type SliceStore[T Float] struct {
	primary []T
	aux     []T
	orig    []T // the caller's slice; Close checks the result ended here
	auxOnce sync.Once
}

// NewSliceStore wraps x as an in-RAM store.  The transform result is
// written back into x (BufStore's even-flip guarantee).
func NewSliceStore[T Float](x []T) *SliceStore[T] {
	return &SliceStore[T]{primary: x, orig: x}
}

// Len returns the logical vector length.
func (st *SliceStore[T]) Len() int { return len(st.orig) }

func (st *SliceStore[T]) check(n, off int) error {
	if off < 0 || off+n > len(st.orig) {
		return fmt.Errorf("exec: store access [%d, %d) outside vector of length %d", off, off+n, len(st.orig))
	}
	return nil
}

// ensureAux allocates the scratch plane once; safe under concurrent
// transpose workers.
func (st *SliceStore[T]) ensureAux() {
	st.auxOnce.Do(func() {
		if st.aux == nil {
			st.aux = make([]T, len(st.orig))
		}
	})
}

// Read copies out of the primary plane.
func (st *SliceStore[T]) Read(dst []T, off int) error {
	if err := st.check(len(dst), off); err != nil {
		return err
	}
	copy(dst, st.primary[off:off+len(dst)])
	return nil
}

// Write copies into the primary plane.
func (st *SliceStore[T]) Write(src []T, off int) error {
	if err := st.check(len(src), off); err != nil {
		return err
	}
	copy(st.primary[off:off+len(src)], src)
	return nil
}

// WriteAux copies into the auxiliary plane.
func (st *SliceStore[T]) WriteAux(src []T, off int) error {
	if err := st.check(len(src), off); err != nil {
		return err
	}
	st.ensureAux()
	copy(st.aux[off:off+len(src)], src)
	return nil
}

// Flip exchanges the planes.
func (st *SliceStore[T]) Flip() error {
	st.ensureAux()
	st.primary, st.aux = st.aux, st.primary
	return nil
}

// Planes exposes both planes for the zero-copy fast path.
func (st *SliceStore[T]) Planes() (primary, aux []T) {
	st.ensureAux()
	return st.primary, st.aux
}

// Close verifies the planes ended in their original parity: an odd
// number of flips would leave the result in the scratch plane instead
// of the caller's slice, which must surface as an error rather than a
// silently untouched input.
func (st *SliceStore[T]) Close() error {
	if len(st.aux) > 0 && &st.primary[0] != &st.orig[0] {
		return fmt.Errorf("exec: store closed after an odd number of plane flips; result is not in the caller's slice")
	}
	return nil
}
