package exec

import (
	"context"
	"sort"
	"time"
)

// TimingOptions controls TimeSchedule.  The zero value selects defaults
// suitable for search-time measurement: one warmup run, three timed
// repetitions, at least 2ms of work per repetition.
type TimingOptions struct {
	Warmup      int           // untimed warmup runs before measuring (default 1)
	Repeat      int           // timed repetitions; the median is reported (default 3)
	MinDuration time.Duration // minimum wall time per repetition (default 2ms)
}

func (o TimingOptions) withDefaults() TimingOptions {
	if o.Warmup <= 0 {
		o.Warmup = 1
	}
	if o.Repeat <= 0 {
		o.Repeat = 3
	}
	if o.MinDuration <= 0 {
		o.MinDuration = 2 * time.Millisecond
	}
	return o
}

// seedScratch fills x with the bounded timing test pattern (sup norm
// 3.5 = 2^2 less a bit, so growth bounds below are easy to state).
func seedScratch(x []float64) {
	for i := range x {
		x[i] = float64(i&7) - 3.5
	}
}

// maxTimedRuns bounds how many unnormalized WHT(2^n) runs may replay in
// place on one scratch buffer before it must be reinitialized: each run
// grows the sup norm by at most 2^n (and W^2 = 2^n*I makes the growth
// geometric, not incidental), so after c runs from the seed the largest
// exponent is at most 2 + n*c.  Keeping n*c under 990 leaves the buffer
// comfortably inside float64 range — overflowing it would have the
// timing loop measure Inf/NaN arithmetic (often denormal-speed, never
// kernel-speed) instead of the real transform.
func maxTimedRuns(n int) int {
	if n < 1 {
		n = 1
	}
	c := 990 / n
	if c < 1 {
		c = 1
	}
	if c > 1<<10 {
		c = 1 << 10
	}
	return c
}

// timeChunked is the shared chunked timing loop behind TimeSchedule and
// TimeBatch: run(k) executes k back-to-back evaluations, reset
// reinitializes the scratch data, and n is the transform log-size
// bounding how many in-place runs the scratch survives.  Each timed
// chunk is preceded by a reset outside the timed region, so the clock
// only ever covers finite-range arithmetic; chunks grow geometrically
// (capped by maxTimedRuns) so the clock is still read O(log runs)
// times.  The median over Repeat repetitions is returned in ns per run.
func timeChunked(opt TimingOptions, n int, run func(k int), reset func()) float64 {
	maxChunk := maxTimedRuns(n)
	for w := opt.Warmup; w > 0; w -= maxChunk {
		reset()
		k := w
		if k > maxChunk {
			k = maxChunk
		}
		run(k)
	}
	samples := make([]float64, 0, opt.Repeat)
	for r := 0; r < opt.Repeat; r++ {
		runs := 0
		chunk := 1
		var elapsed time.Duration
		for {
			reset()
			start := time.Now()
			run(chunk)
			elapsed += time.Since(start)
			runs += chunk
			if elapsed >= opt.MinDuration {
				break
			}
			// Grow the chunk so the clock is read O(log runs) times and
			// tiny schedules are not dominated by timer overhead; the cap
			// keeps the scratch finite for the whole chunk.
			if chunk < maxChunk {
				chunk <<= 1
				if chunk > maxChunk {
					chunk = maxChunk
				}
			}
		}
		samples = append(samples, float64(elapsed.Nanoseconds())/float64(runs))
	}
	sort.Float64s(samples)
	mid := len(samples) / 2
	if len(samples)%2 == 1 {
		return samples[mid]
	}
	return (samples[mid-1] + samples[mid]) / 2
}

// TimeSchedule measures the real per-run latency of a compiled schedule in
// nanoseconds: it replays the schedule in place on a scratch float64
// vector until each repetition has accumulated at least MinDuration of
// work, and reports the median over Repeat repetitions.  Warmup runs
// (untimed) populate the caches and the kernel table path first.  It is
// the shared timing loop behind the measured-cost search backend, the
// tuner, and cmd/whtsearch -time.
//
// The scratch vector is reinitialized between timed chunks, outside the
// timed region: the unnormalized transform grows the data by ~2^n per
// run, so an unbounded replay would overflow to ±Inf/NaN after a few
// dozen runs and long measurements would time denormal/Inf arithmetic
// instead of the real kernels.  The chunk bound (maxTimedRuns) keeps
// the buffer finite for arbitrarily long measurements.
//
// Timing is wall-clock and therefore host-dependent and noisy; callers
// comparing plans should keep the host quiet and rely on the median to
// reject scheduling outliers.  TimeSchedule is not safe for concurrent
// use with other measurements on the same machine in the sense that
// simultaneous timings perturb each other; serialize measurements that
// will be compared.
func TimeSchedule(s *Schedule, opt TimingOptions) (nsPerRun float64) {
	x := make([]float64, s.Size())
	return timeScheduleOn(s, x, opt)
}

// timeScheduleOn is TimeSchedule on a caller-provided scratch vector
// (the regression tests inspect the buffer after the measurement).
func timeScheduleOn(s *Schedule, x []float64, opt TimingOptions) float64 {
	opt = opt.withDefaults()
	return timeChunked(opt, s.Log2Size(), func(k int) {
		for i := 0; i < k; i++ {
			MustRun(s, x)
		}
	}, func() { seedScratch(x) })
}

// TimeScheduleParallel measures the real per-run latency of the schedule
// through the parallel executor with the tier pinned to mode and the
// worker count pinned to workers (workers <= 0 selects GOMAXPROCS) — the
// measurement primitive behind the tuner's barrier-vs-pipelined parallel
// sweep.  The scratch discipline is TimeSchedule's: reinitialized between
// timed chunks, outside the timed region.
func TimeScheduleParallel(s *Schedule, workers int, mode ParallelMode, opt TimingOptions) float64 {
	opt = opt.withDefaults()
	x := make([]float64, s.Size())
	return timeChunked(opt, s.Log2Size(), func(k int) {
		for i := 0; i < k; i++ {
			if err := RunParallelMode(s, x, workers, mode); err != nil {
				panic(err)
			}
		}
	}, func() { seedScratch(x) })
}

// TimeSegmented measures the real per-run latency of a segmented
// schedule streamed through an in-RAM store by the out-of-core
// executor — the measurement primitive behind the tuner's resident
// budget and phase-split sweep.  An in-RAM store prices the segment
// structure itself (the extra transpose passes, the per-window dispatch)
// without the noise of real disk I/O; the relative ordering of segment
// shapes is what the sweep needs, and that is store-independent.  The
// scratch discipline is TimeSchedule's.
func TimeSegmented(s *Schedule, segOpt SegOptions, opt TimingOptions) float64 {
	opt = opt.withDefaults()
	x := make([]float64, s.Size())
	store := NewSliceStore(x)
	return timeChunked(opt, s.Log2Size(), func(k int) {
		for i := 0; i < k; i++ {
			if err := RunSegmented(context.Background(), s, store, segOpt); err != nil {
				panic(err)
			}
		}
	}, func() { seedScratch(x) })
}

// TimeBatch measures the real latency of transforming a batch of lane
// float64 vectors with the schedule, in nanoseconds per whole batch,
// forcing either the SoA tier (soa true) or the per-vector path (soa
// false) regardless of the schedule's crossover setting — the
// measurement primitive behind the tuner's SoA-vs-AoS batch sweep.
// The batch scratch is reinitialized between timed chunks exactly like
// TimeSchedule's vector.
func TimeBatch(s *Schedule, lane int, soa bool, opt TimingOptions) float64 {
	if lane < 1 {
		lane = 1
	}
	opt = opt.withDefaults()
	xs := make([][]float64, lane)
	for i := range xs {
		xs[i] = make([]float64, s.Size())
	}
	kt := newKernelTable[float64](s)
	run := func(k int) {
		for i := 0; i < k; i++ {
			if soa {
				_ = runBatchSoA(nil, s, &kt, xs)
			} else {
				for _, x := range xs {
					runStages(s, &kt, x, 0, 1)
				}
			}
		}
	}
	reset := func() {
		for _, x := range xs {
			seedScratch(x)
		}
	}
	return timeChunked(opt, s.Log2Size(), run, reset)
}
