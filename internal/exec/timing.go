package exec

import (
	"sort"
	"time"
)

// TimingOptions controls TimeSchedule.  The zero value selects defaults
// suitable for search-time measurement: one warmup run, three timed
// repetitions, at least 2ms of work per repetition.
type TimingOptions struct {
	Warmup      int           // untimed warmup runs before measuring (default 1)
	Repeat      int           // timed repetitions; the median is reported (default 3)
	MinDuration time.Duration // minimum wall time per repetition (default 2ms)
}

func (o TimingOptions) withDefaults() TimingOptions {
	if o.Warmup <= 0 {
		o.Warmup = 1
	}
	if o.Repeat <= 0 {
		o.Repeat = 3
	}
	if o.MinDuration <= 0 {
		o.MinDuration = 2 * time.Millisecond
	}
	return o
}

// TimeSchedule measures the real per-run latency of a compiled schedule in
// nanoseconds: it replays the schedule in place on a scratch float64
// vector until each repetition has accumulated at least MinDuration of
// work, and reports the median over Repeat repetitions.  Warmup runs
// (untimed) populate the caches and the kernel table path first.  It is
// the shared timing loop behind the measured-cost search backend, the
// tuner, and cmd/whtsearch -time.
//
// Timing is wall-clock and therefore host-dependent and noisy; callers
// comparing plans should keep the host quiet and rely on the median to
// reject scheduling outliers.  TimeSchedule is not safe for concurrent
// use with other measurements on the same machine in the sense that
// simultaneous timings perturb each other; serialize measurements that
// will be compared.
func TimeSchedule(s *Schedule, opt TimingOptions) (nsPerRun float64) {
	opt = opt.withDefaults()
	x := make([]float64, s.Size())
	for i := range x {
		x[i] = float64(i&7) - 3.5
	}
	for w := 0; w < opt.Warmup; w++ {
		MustRun(s, x)
	}
	samples := make([]float64, 0, opt.Repeat)
	for r := 0; r < opt.Repeat; r++ {
		runs := 0
		chunk := 1
		start := time.Now()
		var elapsed time.Duration
		for {
			for i := 0; i < chunk; i++ {
				MustRun(s, x)
			}
			runs += chunk
			elapsed = time.Since(start)
			if elapsed >= opt.MinDuration {
				break
			}
			// Grow the chunk so the clock is read O(log runs) times and
			// tiny schedules are not dominated by timer overhead.
			if chunk < 1<<10 {
				chunk <<= 1
			}
		}
		samples = append(samples, float64(elapsed.Nanoseconds())/float64(runs))
	}
	sort.Float64s(samples)
	mid := len(samples) / 2
	if len(samples)%2 == 1 {
		return samples[mid]
	}
	return (samples[mid-1] + samples[mid]) / 2
}
