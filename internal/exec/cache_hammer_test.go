package exec

import (
	"sync"
	"testing"

	"repro/internal/plan"
)

// The serve-path concurrency hammer: the daemon's access pattern is
// many goroutines calling ForSize per request while wisdom loading
// (UseTunedPlanWith), cache warming, stats scraping, and the occasional
// purge run concurrently.  Under -race this pins that the cache and the
// tuned-plan registry stay coherent — every schedule served is the
// right size and, once a tuned plan is registered and no purge follows,
// ForSize converges to the tuned plan, not a stale rebuild.

func TestScheduleCacheHammerServePattern(t *testing.T) {
	defer ResetTunedPlans()
	ResetTunedPlans()

	sizes := []int{8, 9, 10, 11, 12}
	const perWorker = 200
	var wg sync.WaitGroup

	// Request servers: hot ForSize traffic on every size.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := sizes[(seed+i)%len(sizes)]
				s := ForSize(n)
				if s.Log2Size() != n {
					t.Errorf("ForSize(%d) returned schedule of size %d", n, s.Log2Size())
					return
				}
			}
		}(w)
	}

	// Tuners: re-register tuned plans for the same sizes while requests
	// are in flight (the wisdom-load-at-boot / retune-at-runtime shape).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker/4; i++ {
				n := sizes[(seed+i)%len(sizes)]
				p := plan.Iterative(n)
				if err := UseTunedPlanWith(p, TunedConfig{SoAMinBatch: 16, ParallelMode: BarrierParallel}); err != nil {
					t.Errorf("UseTunedPlanWith(%d): %v", n, err)
					return
				}
			}
		}(w)
	}

	// Readers of the tuned registry and the stats counters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			for _, n := range sizes {
				TunedPlan(n)
				TunedConfigFor(n)
			}
			DefaultCacheStats()
		}
	}()

	wg.Wait()

	// Quiesced: every tuned size must now serve its tuned plan (the
	// registry-before-warm ordering in UseTunedPlanWith is what makes
	// this hold even when an LRU eviction races the registration).
	for _, n := range sizes {
		if _, ok := TunedPlan(n); !ok {
			t.Fatalf("size %d lost its tuned plan", n)
		}
		s := ForSize(n)
		if s.SoAMinBatch() != 16 || s.ParallelMode() != BarrierParallel {
			t.Fatalf("ForSize(%d) serves a stale schedule: soaMin=%d parMode=%v",
				n, s.SoAMinBatch(), s.ParallelMode())
		}
	}
}

// Purge racing Get/Warm on a private cache: entries and counters must
// stay internally consistent and every lookup must still return a
// correctly sized schedule.
func TestScheduleCachePurgeRace(t *testing.T) {
	c := NewScheduleCache(3) // tighter than the size set: constant eviction
	sizes := []int{6, 7, 8, 9, 10}
	build := func(n int) func() *Schedule {
		return func() *Schedule { return Compile(plan.Balanced(n, plan.MaxLeafLog)) }
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				n := sizes[(seed+i)%len(sizes)]
				switch i % 7 {
				case 5:
					if err := c.Warm(n, build(n)()); err != nil {
						t.Errorf("Warm(%d): %v", n, err)
						return
					}
				case 6:
					if seed == 0 {
						c.Purge()
					}
					c.Stats()
					c.Len()
				default:
					if s := c.Get(n, build(n)); s.Log2Size() != n {
						t.Errorf("Get(%d) returned size %d", n, s.Log2Size())
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 3 {
		t.Fatalf("cache exceeded its bound: %d entries", c.Len())
	}
}
