package exec

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/plan"
)

// memStore is a test BufStore with no direct-plane fast path, forcing
// the copy path through resident buffers.
type memStore[T Float] struct {
	primary, aux []T
}

func newMemStore[T Float](x []T) *memStore[T] {
	st := &memStore[T]{primary: make([]T, len(x)), aux: make([]T, len(x))}
	copy(st.primary, x)
	return st
}

func (st *memStore[T]) Len() int { return len(st.primary) }

func (st *memStore[T]) Read(dst []T, off int) error {
	copy(dst, st.primary[off:off+len(dst)])
	return nil
}

func (st *memStore[T]) Write(src []T, off int) error {
	copy(st.primary[off:off+len(src)], src)
	return nil
}

func (st *memStore[T]) WriteAux(src []T, off int) error {
	copy(st.aux[off:off+len(src)], src)
	return nil
}

func (st *memStore[T]) Flip() error {
	st.primary, st.aux = st.aux, st.primary
	return nil
}

func (st *memStore[T]) Close() error { return nil }

func segInput(n int) []float64 {
	rng := rand.New(rand.NewSource(int64(n) + 7))
	x := make([]float64, 1<<uint(n))
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}

func TestRunSegmentedMatchesFlat(t *testing.T) {
	for _, tc := range []struct{ n, budget int }{
		{10, 6}, {12, 8}, {13, 7}, {14, 6},
	} {
		p := plan.Balanced(tc.n, min(plan.MaxLeafLog, tc.budget))
		g, err := plan.TwoPhase(p, tc.budget)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSegmentedSchedule(g)
		if err != nil {
			t.Fatal(err)
		}
		if !s.IsSegmented() {
			t.Fatalf("n=%d budget=%d: expected a segmented schedule", tc.n, tc.budget)
		}
		flat, err := NewSchedule(p)
		if err != nil {
			t.Fatal(err)
		}
		in := segInput(tc.n)

		want := append([]float64(nil), in...)
		if err := Run(flat, want); err != nil {
			t.Fatal(err)
		}

		// Copy path (no direct planes), single worker.
		st := newMemStore(in)
		if err := RunSegmented(context.Background(), s, st, SegOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		got := make([]float64, len(in))
		if err := st.Read(got, 0); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d budget=%d copy path: mismatch at %d: %v vs %v", tc.n, tc.budget, i, got[i], want[i])
			}
		}

		// Copy path, parallel with a tight resident cap.
		st = newMemStore(in)
		opt := SegOptions{Workers: 4, ResidentElems: 1 << uint(tc.budget)}
		if err := RunSegmented(context.Background(), s, st, opt); err != nil {
			t.Fatal(err)
		}
		if err := st.Read(got, 0); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d budget=%d capped parallel: mismatch at %d", tc.n, tc.budget, i)
			}
		}

		// Direct path over the caller's slice.
		buf := append([]float64(nil), in...)
		ss := NewSliceStore(buf)
		if err := RunSegmented(context.Background(), s, ss, SegOptions{Workers: 3}); err != nil {
			t.Fatal(err)
		}
		if err := ss.Close(); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("n=%d budget=%d direct path: mismatch at %d", tc.n, tc.budget, i)
			}
		}
	}
}

func TestRunSegmentedFlatFallback(t *testing.T) {
	s := Compile(plan.Balanced(10, 5))
	in := segInput(10)
	want := append([]float64(nil), in...)
	if err := Run(s, want); err != nil {
		t.Fatal(err)
	}

	buf := append([]float64(nil), in...)
	if err := RunSegmented(context.Background(), s, NewSliceStore(buf), SegOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("direct flat fallback: mismatch at %d", i)
		}
	}

	st := newMemStore(in)
	if err := RunSegmented(context.Background(), s, st, SegOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(in))
	st.Read(got, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("copy flat fallback: mismatch at %d", i)
		}
	}

	// A flat schedule cannot honor a budget smaller than the vector.
	err := RunSegmented(context.Background(), s, newMemStore(in), SegOptions{ResidentElems: 1 << 8})
	if err == nil {
		t.Fatal("flat schedule over budget must error on an external store")
	}
}

func TestRunSegmentedCancel(t *testing.T) {
	p := plan.Balanced(14, 6)
	g, err := plan.TwoPhase(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSegmentedSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := segInput(14)
	if err := RunSegmented(ctx, s, NewSliceStore(x), SegOptions{}); err == nil {
		t.Fatal("cancelled context must abort the segmented run")
	}
}

func TestSingleSegmentCompilesFlatStages(t *testing.T) {
	p := plan.Balanced(12, 6)
	g, err := plan.TwoPhase(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSegmentedSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	if seg.IsSegmented() {
		t.Fatal("a fully-local form must compile to a flat schedule")
	}
	flat, err := NewSchedule(p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := seg.Stages(), flat.Stages()
	if len(a) != len(b) {
		t.Fatalf("stage count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stage %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
