package exec

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// The executor's fault taxonomy.  Every multi-goroutine entry point
// (RunParallel and its tiers, the batch fanouts, the SoA lanes) and
// every context-aware entry point contains the faults of the kernels it
// runs: a panic on a worker goroutine is recovered where it happens,
// converted to a *PanicError carrying stage/window attribution and the
// panicking goroutine's stack, and returned as the call's error — the
// process stays up, sibling workers drain, and the pool is reusable for
// the next call.  Cancellation is reported as the context's own error
// (context.Canceled / context.DeadlineExceeded), never wrapped, so
// errors.Is works directly against the ctx.
//
// On any error return the vector (or batch) contents are unspecified —
// some stages may have run and others not — but every buffer is intact
// memory and every pool, cache, and schedule remains valid for reuse.

// ErrKernelPanic is the sentinel every *PanicError matches through
// errors.Is: callers that only care that a kernel panicked (the serving
// daemon's fault accounting) test against it instead of destructuring.
var ErrKernelPanic = errors.New("exec: kernel panic")

// PanicError is a panic recovered on an executor goroutine, converted
// to an error so one poisoned request cannot take down a worker pool or
// the process.
type PanicError struct {
	// Stage is the index of the schedule stage (or SoA-expanded stage)
	// that was executing, -1 when the panic happened outside any stage.
	Stage int
	// Window is the pipelined tier's window index, -1 on every other
	// tier.
	Window int
	// Value is the recovered panic value.
	Value any
	// Stack is the stack of the panicking goroutine, captured at
	// recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	where := "stage ?"
	if e.Stage >= 0 {
		where = fmt.Sprintf("stage %d", e.Stage)
	}
	if e.Window >= 0 {
		where += fmt.Sprintf(" window %d", e.Window)
	}
	return fmt.Sprintf("exec: kernel panic at %s: %v", where, e.Value)
}

// Is matches ErrKernelPanic, so errors.Is(err, ErrKernelPanic) holds
// for every recovered kernel panic.
func (e *PanicError) Is(target error) bool { return target == ErrKernelPanic }

// newPanicError builds the typed error for a recovered panic value.  A
// panic value that already is a *PanicError passes through unchanged
// (nested recovery must not re-wrap the attribution).
func newPanicError(stage, window int, v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Stage: stage, Window: window, Value: v, Stack: debug.Stack()}
}

// failure collects the first error of a multi-goroutine run and doubles
// as the abort signal: set closes done exactly once, and workers select
// on done (or poll failed) to stop picking up work.  The close/receive
// pair gives the reader of err a happens-before edge, so no lock is
// needed on the read side.
type failure struct {
	once    sync.Once
	aborted atomic.Bool
	e       error
	done    chan struct{}
}

func newFailure() *failure { return &failure{done: make(chan struct{})} }

// set records err as the run's error if it is the first, and signals
// abort.  nil errors are ignored.
func (f *failure) set(err error) {
	if err == nil {
		return
	}
	f.once.Do(func() {
		f.e = err
		f.aborted.Store(true)
		close(f.done)
	})
}

// failed is the cheap polling form of the abort signal.
func (f *failure) failed() bool { return f.aborted.Load() }

// err returns the recorded error, nil when the run completed clean.
func (f *failure) err() error {
	select {
	case <-f.done:
		return f.e
	default:
		return nil
	}
}
