package exec

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/codelet"
	"repro/internal/faultinject"
)

// Context-aware execution.
//
// The serving path (internal/serve) needs two properties the raw
// executors were never asked for: a request must be cancellable without
// abandoning the goroutine that runs it, and a poisoned request must
// not take the worker pool or the process with it.  Both are threaded
// through here as one mechanism: every entry point gains a *Ctx variant
// that polls ctx at work-chunk granularity, and every execution chunk —
// on every tier — runs inside a recover that converts a kernel panic to
// a *PanicError with stage/window attribution (see errors.go).
//
// Cancellation granularity is one chunk of work per tier: the
// sequential tier checks between chunks of at most seqCancelElems
// elements (one interleaved row when rows are larger), the barrier tier
// between stages and per worker chunk, the pipelined tier before every
// window chunk, and the SoA tier between sub-lanes, stage passes, and
// j-rows.  A single kernel call is never interrupted, so a cancelled
// call returns after at most one chunk of residual work.  On a nil ctx
// the polls compile to a pointer test and the chunking degenerates to
// one chunk per stage, so the non-cancellable entry points keep their
// exact former execution shape.
//
// On any error return the vector contents are unspecified (some stages
// may have run), but schedules, caches, and pools all remain valid:
// re-running the same schedule on fresh data must succeed — the
// property the fault-injection suite pins.

// seqCancelElems bounds the number of vector elements one cancellation
// check covers on the sequential tier (and on inline small stages of
// the barrier tier).  2^14 elements is a few microseconds of butterfly
// work — far below any plausible request deadline — while the check
// itself (one atomic load inside ctx.Err) stays amortized over
// thousands of kernel calls.
const seqCancelElems = 1 << 14

// ctxErr polls a nilable context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// cancelChunkCalls returns the flattened-call chunk one cancellation
// check covers for the stage: seqCancelElems worth of kernel calls,
// row-aligned for interleaved stages (splitting below one row would
// trade the unrolled whole-row kernel for the slower range form on
// every chunk seam; a row that is itself larger than the bound becomes
// the chunk).
func cancelChunkCalls(st *Stage) int {
	chunk := seqCancelElems >> uint(st.M)
	if chunk < 1 {
		chunk = 1
	}
	if st.V == codelet.Interleaved {
		if chunk < st.S {
			chunk = st.S
		} else {
			chunk = chunk / st.S * st.S
		}
	}
	return chunk
}

// runStageChunkRecover executes calls [lo, hi) of stage i with panic
// containment: a panic anywhere below — kernel, dispatch, or an armed
// fault-injection hook — returns as a *PanicError attributed to the
// stage.  It is the single contained execution chunk of the sequential
// and barrier tiers.
func runStageChunkRecover[T Float](st *Stage, stage int, ks *kernelSet[T], x []T, base, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(stage, -1, r)
		}
	}()
	faultinject.Fire(faultinject.ExecChunk)
	runStageRange(st, ks, x, base, lo, hi)
	return nil
}

// runStagesCtx is the sequential contained executor behind RunCtx and
// the batch executors' per-vector path: stages in schedule order,
// cancellation checked every cancel chunk, panics recovered per chunk.
func runStagesCtx[T Float](ctx context.Context, s *Schedule, kt *kernelTable[T], x []T) error {
	for i := range s.stages {
		st := &s.stages[i]
		ks := kt.get(st.M, st.Backend)
		total := st.R * st.S
		chunk := total
		if ctx != nil {
			chunk = cancelChunkCalls(st)
		}
		for lo := 0; lo < total; lo += chunk {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			if err := runStageChunkRecover(st, i, ks, x, 0, lo, hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// runVectorCtx transforms one unit-stride vector through the contained
// sequential executor, firing the batch-vector fault point inside the
// containment.
func runVectorCtx[T Float](ctx context.Context, s *Schedule, kt *kernelTable[T], x []T) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(-1, -1, r)
		}
	}()
	faultinject.Fire(faultinject.ExecBatchVector)
	return runStagesCtx(ctx, s, kt, x)
}

// RunCtx is Run with cancellation and fault containment: it polls ctx
// between work chunks (returning ctx.Err() within one chunk of a
// cancellation) and converts a kernel panic to a *PanicError instead of
// unwinding into the caller.  A nil ctx disables the polling but keeps
// the containment.  On error the contents of x are unspecified; x, the
// schedule, and all caches remain reusable.
func RunCtx[T Float](ctx context.Context, s *Schedule, x []T) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	if len(x) != s.size {
		return fmt.Errorf("exec: vector length %d does not match schedule size %d", len(x), s.size)
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	kt := newKernelTable[T](s)
	return runStagesCtx(ctx, s, &kt, x)
}

// RunParallelCtx is RunParallel with cancellation and fault
// containment; the executor tier is the schedule's ParallelMode, as in
// RunParallel.  Cancellation is honored at chunk granularity on both
// tiers and every worker recovers panics, so a poisoned run returns a
// *PanicError with the pool fully drained and reusable.
func RunParallelCtx[T Float](ctx context.Context, s *Schedule, x []T, workers int) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	return RunParallelModeCtx(ctx, s, x, workers, s.ParallelMode())
}

// RunParallelModeCtx is RunParallelMode with cancellation and fault
// containment (see RunParallelCtx).
func RunParallelModeCtx[T Float](ctx context.Context, s *Schedule, x []T, workers int, mode ParallelMode) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	if len(x) != s.size {
		return fmt.Errorf("exec: vector length %d does not match schedule size %d", len(x), s.size)
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if mode == AutoParallel {
		mode = pickParallelMode(s, workers)
	}
	if mode == PipelinedParallel {
		return runPipelined(ctx, s, x, workers)
	}
	return runBarrier(ctx, s, x, workers)
}

// RunBatchCtx is RunBatch with cancellation and fault containment: the
// SoA tier is auto-selected exactly as in RunBatch, cancellation is
// polled between chunks/lanes, and kernel panics return as *PanicError.
// On error some vectors may be transformed and others not (or half);
// the batch memory, schedule, and scratch pools remain reusable.
func RunBatchCtx[T Float](ctx context.Context, s *Schedule, xs [][]T) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	for i, x := range xs {
		if len(x) != s.size {
			return fmt.Errorf("exec: batch vector %d has length %d, want %d", i, len(x), s.size)
		}
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	kt := newKernelTable[T](s)
	if s.soaSelect(len(xs)) {
		return runBatchSoA(ctx, s, &kt, xs)
	}
	for _, x := range xs {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if err := runVectorCtx(ctx, s, &kt, x); err != nil {
			return err
		}
	}
	return nil
}

// RunBatchParallelCtx is RunBatchParallel with cancellation and fault
// containment (see RunBatchCtx); workers <= 0 selects GOMAXPROCS.
func RunBatchParallelCtx[T Float](ctx context.Context, s *Schedule, xs [][]T, workers int) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	for i, x := range xs {
		if len(x) != s.size {
			return fmt.Errorf("exec: batch vector %d has length %d, want %d", i, len(x), s.size)
		}
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return runBatchParallel(ctx, s, xs, workers)
}

// RunBatchSoACtx is RunBatchSoA with cancellation and fault containment
// (see RunBatchCtx).
func RunBatchSoACtx[T Float](ctx context.Context, s *Schedule, xs [][]T) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	for i, x := range xs {
		if len(x) != s.size {
			return fmt.Errorf("exec: batch vector %d has length %d, want %d", i, len(x), s.size)
		}
	}
	if len(xs) == 0 {
		return nil
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	kt := newKernelTable[T](s)
	return runBatchSoA(ctx, s, &kt, xs)
}

// RunBatchSoAParallelCtx is RunBatchSoAParallel with cancellation and
// fault containment (see RunBatchCtx); workers <= 0 selects GOMAXPROCS.
func RunBatchSoAParallelCtx[T Float](ctx context.Context, s *Schedule, xs [][]T, workers int) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	for i, x := range xs {
		if len(x) != s.size {
			return fmt.Errorf("exec: batch vector %d has length %d, want %d", i, len(x), s.size)
		}
	}
	if len(xs) == 0 {
		return nil
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	return runBatchSoAParallel(ctx, s, xs, workers)
}
