package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The segmented streaming executor.
//
// RunSegmented replays a segmented schedule against a BufStore.  Within
// one segment every work unit — a 2^W butterfly window of a stage run,
// a SegTransposeTile-square tile of a transpose — touches a disjoint
// element range, so units stream through a bounded pool of workers:
// this is the PR 6 window-dependency structure lifted one level, with
// the degenerate dependency graph the segment barrier induces (every
// unit of segment i+1 depends on all of segment i, because a transpose
// is all-to-all across its window).  Each copy-path worker owns one
// resident buffer, so while one worker waits on store I/O another is
// deep in butterfly compute — the transpose-I/O/compute overlap an
// out-of-core run lives on — and the total resident footprint is
// bounded by workers * max(window, 2 tiles), clamped under
// SegOptions.ResidentElems.
//
// Stores that expose their planes directly (SliceStore) skip the
// resident buffers entirely: windows run in place and tiles copy
// plane-to-plane.

// SegOptions tunes one RunSegmented call.  The zero value uses
// GOMAXPROCS workers and an uncapped resident pool (one window or two
// tiles per worker).
type SegOptions struct {
	// Workers bounds the streaming pool (<= 0 selects GOMAXPROCS).
	Workers int

	// ResidentElems caps the executor's own buffering in elements
	// across all workers (<= 0: no cap).  The cap is enforced by
	// shrinking the worker pool, never below one worker — a single
	// window (or tile pair) is the irreducible working set of the
	// compiled budget.
	ResidentElems int
}

// RunSegmented executes the schedule against the store, streaming
// segments when the schedule carries them and falling back to the
// ordinary in-place executors for flat schedules over RAM-backed
// stores.  Cancellation is polled per window/tile and kernel panics
// return as *PanicError, as on every other tier.  On error the store
// contents are unspecified but the store itself remains usable.
//
// The transform result lands in the store's primary plane (for a
// SliceStore, the caller's original slice): segments flip planes an
// even number of times.
func RunSegmented[T Float](ctx context.Context, s *Schedule, store BufStore[T], opt SegOptions) error {
	if s == nil {
		return fmt.Errorf("exec: nil schedule")
	}
	if store == nil {
		return fmt.Errorf("exec: nil store")
	}
	if store.Len() != s.size {
		return fmt.Errorf("exec: store length %d does not match schedule size %d", store.Len(), s.size)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !s.IsSegmented() {
		// Flat schedule: over a RAM-backed store this is exactly the
		// pre-segmentation engine; over an external store the vector
		// must fit one resident buffer (the schedule was compiled
		// without a budget, so its working set is the whole vector).
		if direct, ok := store.(sliceBacked[T]); ok {
			x, _ := direct.Planes()
			if workers > 1 {
				return RunParallelCtx(ctx, s, x, workers)
			}
			kt := newKernelTable[T](s)
			return runStagesCtx(ctx, s, &kt, x)
		}
		if opt.ResidentElems > 0 && opt.ResidentElems < s.size {
			return fmt.Errorf("exec: flat schedule of %d elements exceeds resident budget %d; compile a segmented schedule", s.size, opt.ResidentElems)
		}
		buf := make([]T, s.size)
		if err := store.Read(buf, 0); err != nil {
			return err
		}
		kt := newKernelTable[T](s)
		if err := runStagesCtx(ctx, s, &kt, buf); err != nil {
			return err
		}
		return store.Write(buf, 0)
	}
	kt := newKernelTable[T](s)
	for i := range s.segments {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		seg := &s.segments[i]
		var err error
		switch seg.Kind {
		case StageRunSegment:
			err = runSegStages(ctx, s, &kt, seg, store, workers, opt)
		case TransposeSegment:
			if err = runSegTranspose(ctx, s, seg, store, workers, opt); err == nil {
				err = store.Flip()
			}
		default:
			err = fmt.Errorf("exec: unknown segment kind %d", seg.Kind)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// runSegWindow runs one segment's stage list on one resident window at
// the given base, with per-chunk cancellation and panic containment
// (the same contained chunk the sequential tier uses, so the ExecChunk
// fault point and *PanicError attribution apply here too).
func runSegWindow[T Float](ctx context.Context, seg *Segment, sets []*kernelSet[T], x []T, base int) error {
	for i := range seg.Stages {
		st := &seg.Stages[i]
		total := st.R * st.S
		chunk := total
		if ctx != nil {
			chunk = cancelChunkCalls(st)
		}
		for lo := 0; lo < total; lo += chunk {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			if err := runStageChunkRecover(st, i, sets[i], x, base, lo, hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// runSegStages streams the 2^(n-W) independent windows of a stage-run
// segment through the worker pool.  Copy-path workers own one window
// buffer each (read, transform resident, write back); direct-path
// workers transform in place.
func runSegStages[T Float](ctx context.Context, s *Schedule, kt *kernelTable[T], seg *Segment, store BufStore[T], workers int, opt SegOptions) error {
	numWin := 1 << uint(s.n-seg.W)
	winElems := 1 << uint(seg.W)

	// The lazy kernel table is not concurrency-safe; resolve every
	// stage's set before the pool starts, as the pipelined tier does.
	sets := make([]*kernelSet[T], len(seg.Stages))
	for i := range seg.Stages {
		sets[i] = kt.get(seg.Stages[i].M, seg.Stages[i].Backend)
	}

	direct, isDirect := store.(sliceBacked[T])
	if workers > numWin {
		workers = numWin
	}
	if !isDirect && opt.ResidentElems > 0 {
		if cap := opt.ResidentElems / winElems; workers > cap {
			workers = cap
		}
	}
	if workers < 1 {
		workers = 1
	}

	var next atomic.Int64
	fail := newFailure()
	work := func() {
		var buf []T
		if !isDirect {
			buf = make([]T, winElems)
		}
		for !fail.failed() {
			w := int(next.Add(1) - 1)
			if w >= numWin {
				return
			}
			base := w * winElems
			if isDirect {
				x, _ := direct.Planes()
				if err := runSegWindow(ctx, seg, sets, x, base); err != nil {
					fail.set(err)
					return
				}
				continue
			}
			if err := store.Read(buf, base); err != nil {
				fail.set(err)
				return
			}
			if err := runSegWindow(ctx, seg, sets, buf, 0); err != nil {
				fail.set(err)
				return
			}
			if err := store.Write(buf, base); err != nil {
				fail.set(err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return fail.err()
}

// runSegTranspose streams the tiles of a transpose segment: each
// SegTransposeTile-square tile of each window is read as whole input
// rows, transposed resident, and written as whole output rows into the
// auxiliary plane.  Tiles are pairwise disjoint on both planes, so they
// parallelize freely; the caller flips the planes afterwards.
func runSegTranspose[T Float](ctx context.Context, s *Schedule, seg *Segment, store BufStore[T], workers int, opt SegOptions) error {
	numWin := 1 << uint(s.n-seg.W)
	rows := 1 << uint(seg.P)
	cols := 1 << uint(seg.Q)
	t := SegTransposeTile
	if t > rows {
		t = rows
	}
	if t > cols {
		t = cols
	}
	tilesR := rows / t
	tilesC := cols / t
	totalTiles := numWin * tilesR * tilesC

	direct, isDirect := store.(sliceBacked[T])
	if workers > totalTiles {
		workers = totalTiles
	}
	if !isDirect && opt.ResidentElems > 0 {
		if cap := opt.ResidentElems / (2 * t * t); workers > cap {
			workers = cap
		}
	}
	if workers < 1 {
		workers = 1
	}

	var next atomic.Int64
	fail := newFailure()
	work := func() {
		var tin, tout []T
		if !isDirect {
			tin = make([]T, t*t)
			tout = make([]T, t*t)
		}
		for !fail.failed() {
			id := int(next.Add(1) - 1)
			if id >= totalTiles {
				return
			}
			if err := ctxErr(ctx); err != nil {
				fail.set(err)
				return
			}
			win := id / (tilesR * tilesC)
			rem := id % (tilesR * tilesC)
			tr := rem / tilesC
			tc := rem % tilesC
			base := win << uint(seg.W)
			var err error
			if isDirect {
				err = transposeTileDirect(direct, base, rows, cols, t, tr, tc)
			} else {
				err = transposeTileCopy(store, tin, tout, base, rows, cols, t, tr, tc)
			}
			if err != nil {
				fail.set(err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return fail.err()
}

// transposeTileDirect moves one tile plane-to-plane in RAM: output row
// or of the tile gathers input column tc*t+or across the tile's input
// rows.
func transposeTileDirect[T Float](direct sliceBacked[T], base, rows, cols, t, tr, tc int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(-1, -1, r)
		}
	}()
	p, a := direct.Planes()
	for or := 0; or < t; or++ {
		src := base + tr*t*cols + tc*t + or
		dst := base + (tc*t+or)*rows + tr*t
		for c := 0; c < t; c++ {
			a[dst+c] = p[src+c*cols]
		}
	}
	return nil
}

// transposeTileCopy moves one tile through resident buffers: t
// contiguous input-row runs in, a resident t x t transpose, t
// contiguous output-row runs out to the auxiliary plane.
func transposeTileCopy[T Float](store BufStore[T], tin, tout []T, base, rows, cols, t, tr, tc int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = newPanicError(-1, -1, r)
		}
	}()
	for r := 0; r < t; r++ {
		if err := store.Read(tin[r*t:(r+1)*t], base+(tr*t+r)*cols+tc*t); err != nil {
			return err
		}
	}
	for or := 0; or < t; or++ {
		for c := 0; c < t; c++ {
			tout[or*t+c] = tin[c*t+or]
		}
	}
	for or := 0; or < t; or++ {
		if err := store.WriteAux(tout[or*t:(or+1)*t], base+(tc*t+or)*rows+tr*t); err != nil {
			return err
		}
	}
	return nil
}
