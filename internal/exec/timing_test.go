package exec

import (
	"testing"
	"time"

	"repro/internal/plan"
)

func TestTimeScheduleReportsPlausibleLatency(t *testing.T) {
	opt := TimingOptions{Warmup: 1, Repeat: 3, MinDuration: 200 * time.Microsecond}
	small := TimeSchedule(Compile(plan.Balanced(6, plan.MaxLeafLog)), opt)
	large := TimeSchedule(Compile(plan.Balanced(14, plan.MaxLeafLog)), opt)
	if small <= 0 || large <= 0 {
		t.Fatalf("non-positive latencies: %g, %g", small, large)
	}
	if large < small {
		t.Fatalf("2^14 (%g ns) timed faster than 2^6 (%g ns)", large, small)
	}
}

func TestTimeScheduleDefaults(t *testing.T) {
	o := TimingOptions{}.withDefaults()
	if o.Warmup != 1 || o.Repeat != 3 || o.MinDuration != 2*time.Millisecond {
		t.Fatalf("defaults = %+v", o)
	}
	// An explicit configuration passes through untouched.
	set := TimingOptions{Warmup: 2, Repeat: 5, MinDuration: time.Millisecond}
	if got := set.withDefaults(); got != set {
		t.Fatalf("explicit options rewritten: %+v", got)
	}
}
