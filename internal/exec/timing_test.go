package exec

import (
	"math"
	"testing"
	"time"

	"repro/internal/plan"
)

func TestTimeScheduleReportsPlausibleLatency(t *testing.T) {
	opt := TimingOptions{Warmup: 1, Repeat: 3, MinDuration: 200 * time.Microsecond}
	small := TimeSchedule(Compile(plan.Balanced(6, plan.MaxLeafLog)), opt)
	large := TimeSchedule(Compile(plan.Balanced(14, plan.MaxLeafLog)), opt)
	if small <= 0 || large <= 0 {
		t.Fatalf("non-positive latencies: %g, %g", small, large)
	}
	if large < small {
		t.Fatalf("2^14 (%g ns) timed faster than 2^6 (%g ns)", large, small)
	}
}

// TestTimeScheduleKeepsScratchFinite is the regression test for the
// timing-loop overflow: the unnormalized WHT grows its data by ~2^n per
// in-place run (W^2 = 2^n * I), so the old loop — which never
// reinitialized its scratch — overflowed to ±Inf after a few dozen runs
// at moderate n, and every long measurement timed Inf/NaN arithmetic.
// Force a multi-thousand-run measurement and demand the buffer never
// leaves float64 range.
func TestTimeScheduleKeepsScratchFinite(t *testing.T) {
	s := Compile(plan.Balanced(10, plan.MaxLeafLog))
	x := make([]float64, s.Size())
	// Warmup beyond the old overflow horizon plus two repetitions long
	// enough for thousands of timed runs each.
	opt := TimingOptions{Warmup: 3000, Repeat: 2, MinDuration: 15 * time.Millisecond}
	ns := timeScheduleOn(s, x, opt)
	if ns <= 0 || math.IsInf(ns, 0) || math.IsNaN(ns) {
		t.Fatalf("implausible measurement %g ns", ns)
	}
	for i, v := range x {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("scratch[%d] = %g after measurement; timing loop overflowed", i, v)
		}
	}
}

// TestMaxTimedRuns pins the chunk bound that keeps the scratch finite:
// c runs grow the seed's exponent by at most n*c, which must stay well
// inside float64 range for every size the engine addresses.
func TestMaxTimedRuns(t *testing.T) {
	for n := 1; n <= 30; n++ {
		c := maxTimedRuns(n)
		if c < 1 || c > 1<<10 {
			t.Fatalf("maxTimedRuns(%d) = %d outside [1, 1024]", n, c)
		}
		if 2+n*c > 1020 {
			t.Fatalf("maxTimedRuns(%d) = %d admits exponent %d (overflow)", n, c, 2+n*c)
		}
	}
	if maxTimedRuns(0) < 1 {
		t.Fatal("maxTimedRuns must stay positive for degenerate sizes")
	}
}

// TestTimeBatchPlausible covers the batch timing primitive behind the
// tuner's SoA sweep: both forced paths produce positive, finite
// per-batch latencies, and a larger batch costs more than a smaller one.
func TestTimeBatchPlausible(t *testing.T) {
	s := Compile(plan.Balanced(10, plan.MaxLeafLog))
	opt := TimingOptions{Warmup: 1, Repeat: 3, MinDuration: 500 * time.Microsecond}
	aos := TimeBatch(s, 4, false, opt)
	soa := TimeBatch(s, 4, true, opt)
	if aos <= 0 || soa <= 0 {
		t.Fatalf("non-positive batch latencies: aos %g, soa %g", aos, soa)
	}
	one := TimeBatch(s, 1, false, opt)
	if aos < one {
		t.Fatalf("batch of 4 (%g ns) timed faster than batch of 1 (%g ns)", aos, one)
	}
}

func TestTimeScheduleDefaults(t *testing.T) {
	o := TimingOptions{}.withDefaults()
	if o.Warmup != 1 || o.Repeat != 3 || o.MinDuration != 2*time.Millisecond {
		t.Fatalf("defaults = %+v", o)
	}
	// An explicit configuration passes through untouched.
	set := TimingOptions{Warmup: 2, Repeat: 5, MinDuration: time.Millisecond}
	if got := set.withDefaults(); got != set {
		t.Fatalf("explicit options rewritten: %+v", got)
	}
}
