package exec

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/codelet"
	"repro/internal/plan"
)

// soaTestPolicies is the variant-policy grid the SoA equivalence tests
// sweep: the library default, the legacy strided engine, aggressive
// interleaving, and the fused radix-4 interleaved form.
func soaTestPolicies() []codelet.Policy {
	return []codelet.Policy{
		codelet.DefaultPolicy(),
		{StridedOnly: true},
		{ILMinS: 2},
		{ILFuse: true},
	}
}

// soaTestPlan returns a plan for size n that exercises the block tier
// (and therefore the SoA stage expansion) whenever n admits one.
func soaTestPlan(n int) *plan.Node {
	if n > plan.MaxLeafLog+1 {
		bl := plan.MaxLeafLog + 1
		if n-2 > bl {
			bl = n - 2
		}
		if bl > plan.BlockLeafMax {
			bl = plan.BlockLeafMax
		}
		if bl < n {
			return plan.Split(plan.Balanced(n-bl, plan.MaxLeafLog), plan.Leaf(bl))
		}
	}
	return plan.Balanced(n, plan.MaxLeafLog)
}

func randomBatch[T Float](rng *rand.Rand, lane, size int) [][]T {
	xs := make([][]T, lane)
	for b := range xs {
		xs[b] = make([]T, size)
		for j := range xs[b] {
			xs[b][j] = T(rng.Float64()*2 - 1)
		}
	}
	return xs
}

func cloneBatch[T Float](xs [][]T) [][]T {
	out := make([][]T, len(xs))
	for i, x := range xs {
		out[i] = append([]T(nil), x...)
	}
	return out
}

// checkSoAEquivalence runs one (schedule, lane) combination through the
// sequential and parallel SoA paths and demands bitwise equality with
// per-vector Run.
func checkSoAEquivalence[T Float](t *testing.T, s *Schedule, rng *rand.Rand, lane int, label string) {
	t.Helper()
	xs := randomBatch[T](rng, lane, s.Size())
	want := cloneBatch(xs)
	for _, x := range want {
		MustRun(s, x)
	}

	got := cloneBatch(xs)
	if err := RunBatchSoA(s, got); err != nil {
		t.Fatalf("%s: RunBatchSoA: %v", label, err)
	}
	assertBatchEqual(t, label+"/seq", got, want)

	got = cloneBatch(xs)
	if err := RunBatchSoAParallel(s, got, 4); err != nil {
		t.Fatalf("%s: RunBatchSoAParallel: %v", label, err)
	}
	assertBatchEqual(t, label+"/par", got, want)
}

func assertBatchEqual[T Float](t *testing.T, label string, got, want [][]T) {
	t.Helper()
	for b := range want {
		for j := range want[b] {
			if got[b][j] != want[b][j] {
				t.Fatalf("%s: vector %d element %d = %v, want %v (bitwise)", label, b, j, got[b][j], want[b][j])
			}
		}
	}
}

// TestRunBatchSoAEquivalence is the cross-engine property test of the
// SoA batch tier: RunBatchSoA (sequential and parallel) must be
// bitwise-equal to per-vector Run across transform sizes 2..20, batch
// widths {1, 3, 8, 17}, float64 and float32, and the variant-policy
// grid.  Sizes through 12 sweep the full grid; the out-of-cache sizes
// thin the width and policy axes to keep the suite's runtime bounded
// while still covering the block-stage expansion and both element
// types at every size.
func TestRunBatchSoAEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 141))
	widths := []int{1, 3, 8, 17}
	for n := 2; n <= 20; n++ {
		lanes := widths
		pols := soaTestPolicies()
		if n > 12 {
			lanes = []int{3, 8}
			pols = []codelet.Policy{codelet.DefaultPolicy(), {ILFuse: true}}
		}
		if n > 16 && testing.Short() {
			break
		}
		p := soaTestPlan(n)
		for _, pol := range pols {
			s := CompileWith(p, pol)
			for _, lane := range lanes {
				label := fmt.Sprintf("n=%d/pol=%+v/lane=%d", n, pol, lane)
				checkSoAEquivalence[float64](t, s, rng, lane, label+"/f64")
				if n <= 18 {
					checkSoAEquivalence[float32](t, s, rng, lane, label+"/f32")
				}
			}
		}
	}
}

// TestRunBatchAutoSelectsSoA pins the crossover: a schedule with a
// tuned SoA threshold routes RunBatch through the SoA tier (observable
// only through bitwise-equal results — so the test instead checks the
// selection predicate directly on both the tuned and heuristic paths).
func TestRunBatchAutoSelectsSoA(t *testing.T) {
	s := Compile(plan.Balanced(16, plan.MaxLeafLog))
	if s.SoAMinBatch() != 0 {
		t.Fatalf("fresh schedule has SoAMinBatch %d, want 0", s.SoAMinBatch())
	}
	if !s.soaShapeFavors() {
		t.Fatal("balanced n=16 schedule has a large-stride stage; shape heuristic must favor SoA")
	}
	if s.soaSelect(DefaultSoAMinBatch - 1) {
		t.Fatal("default heuristic selected SoA below DefaultSoAMinBatch")
	}
	if !s.soaSelect(DefaultSoAMinBatch) {
		t.Fatal("default heuristic rejected SoA at DefaultSoAMinBatch")
	}

	s.SetSoAMinBatch(3)
	if !s.soaSelect(3) || s.soaSelect(2) {
		t.Fatal("tuned threshold 3 not honored")
	}
	s.SetSoAMinBatch(-1)
	if s.soaSelect(1 << 20) {
		t.Fatal("negative threshold must disable SoA selection")
	}

	// Small schedules with no large-stride stage stay AoS by default.
	small := Compile(plan.Balanced(6, plan.MaxLeafLog))
	if small.soaSelect(64) {
		t.Fatal("shape heuristic selected SoA for a schedule with no large-stride stage")
	}

	// And RunBatch through the auto-selected SoA path stays bitwise-equal.
	rng := rand.New(rand.NewPCG(9, 27))
	s2 := Compile(plan.Balanced(14, plan.MaxLeafLog))
	s2.SetSoAMinBatch(2)
	xs := randomBatch[float64](rng, 4, s2.Size())
	want := cloneBatch(xs)
	for _, x := range want {
		MustRun(s2, x)
	}
	if err := RunBatch(s2, xs); err != nil {
		t.Fatal(err)
	}
	assertBatchEqual(t, "auto-select", xs, want)
}

// TestSoAStagesExpandBlocks checks the block-stage expansion: the SoA
// stage sequence replaces each block stage with its BlockParts factors
// and leaves the element count and stage algebra intact.
func TestSoAStagesExpandBlocks(t *testing.T) {
	n := 16
	p := plan.Split(plan.Balanced(n-12, plan.MaxLeafLog), plan.Leaf(12))
	s := Compile(p)
	soa := s.SoAStages()
	parts := codelet.BlockParts(12)
	wantStages := 0
	for _, st := range s.Stages() {
		if st.M > codelet.GeneratedMaxLog {
			wantStages += len(parts)
		} else {
			wantStages++
		}
	}
	if len(soa) != wantStages {
		t.Fatalf("SoA stage count %d, want %d", len(soa), wantStages)
	}
	for _, st := range soa {
		if st.M > codelet.GeneratedMaxLog {
			t.Fatalf("SoA stage sequence still contains block stage M=%d", st.M)
		}
		if st.Blk != st.S<<uint(st.M) {
			t.Fatalf("stage %+v has inconsistent Blk", st)
		}
		// Every stage must cover the whole vector: R * 2^M * S == 2^n.
		if st.R*st.S<<uint(st.M) != s.Size() {
			t.Fatalf("stage %+v does not tile the vector", st)
		}
	}
}

// TestRunBatchSoAValidation mirrors the batch API contract: mismatched
// vectors reject the whole batch before anything is transformed.
func TestRunBatchSoAValidation(t *testing.T) {
	s := Compile(plan.Balanced(6, plan.MaxLeafLog))
	if err := RunBatchSoA[float64](nil, nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
	xs := [][]float64{make([]float64, 64), make([]float64, 32)}
	xs[0][0], xs[1][0] = 1, 1
	if err := RunBatchSoA(s, xs); err == nil {
		t.Fatal("mismatched batch accepted")
	}
	if xs[0][1] != 0 {
		t.Fatal("batch partially transformed despite validation error")
	}
	if err := RunBatchSoA(s, [][]float64{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := RunBatchSoAParallel(s, xs, 2); err == nil {
		t.Fatal("parallel: mismatched batch accepted")
	}
}

// TestRunBatchSoAWideBatchSubLanes covers the bounded-scratch path: a
// batch wider than SoAMaxLane is processed as consecutive sub-lanes and
// stays bitwise-equal, and a worker count larger than the batch cannot
// fragment the parallel tier into degenerate single-vector lanes.
func TestRunBatchSoAWideBatchSubLanes(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 5))
	s := Compile(plan.Balanced(8, plan.MaxLeafLog))
	lane := SoAMaxLane + 37 // forces two sub-lanes, the second partial
	xs := randomBatch[float64](rng, lane, s.Size())
	want := cloneBatch(xs)
	for _, x := range want {
		MustRun(s, x)
	}
	got := cloneBatch(xs)
	if err := RunBatchSoA(s, got); err != nil {
		t.Fatal(err)
	}
	assertBatchEqual(t, "wide/seq", got, want)

	got = cloneBatch(xs)
	if err := RunBatchSoAParallel(s, got, 1024); err != nil { // workers >> batch
		t.Fatal(err)
	}
	assertBatchEqual(t, "wide/par", got, want)
}
