package exec

import (
	"sync"
	"testing"

	"repro/internal/plan"
)

func TestScheduleCacheLRU(t *testing.T) {
	builds := 0
	build := func(n int) func() *Schedule {
		return func() *Schedule {
			builds++
			return Compile(plan.Balanced(n, plan.MaxLeafLog))
		}
	}
	c := NewScheduleCache(2)
	s4 := c.Get(4, build(4))
	if got := c.Get(4, build(4)); got != s4 {
		t.Fatal("second Get rebuilt the schedule")
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	c.Get(5, build(5))
	c.Get(4, build(4)) // touch 4 so 5 is now least recently used
	c.Get(6, build(6)) // evicts 5
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if builds != 3 {
		t.Fatalf("builds = %d, want 3", builds)
	}
	c.Get(5, build(5)) // miss again: 5 was evicted
	if builds != 4 {
		t.Fatalf("builds = %d, want 4 after eviction", builds)
	}
	c.Get(4, build(4)) // 4 was the LRU entry when 5 came back
	if builds != 5 {
		t.Fatalf("builds = %d, want 5", builds)
	}

	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
}

func TestScheduleCacheConcurrent(t *testing.T) {
	c := NewScheduleCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := 1 + (g+i)%10
				s := c.Get(n, func() *Schedule {
					return Compile(plan.Balanced(n, plan.MaxLeafLog))
				})
				if s.Log2Size() != n {
					t.Errorf("got schedule for %d, want %d", s.Log2Size(), n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache grew past its capacity: %d", c.Len())
	}
}

func TestForSizeCachesDefaultPlan(t *testing.T) {
	a := ForSize(10)
	b := ForSize(10)
	if a != b {
		t.Fatal("ForSize rebuilt the default schedule")
	}
	want := Compile(plan.Balanced(10, plan.MaxLeafLog))
	if a.NumStages() != want.NumStages() || a.Size() != want.Size() {
		t.Fatalf("ForSize schedule differs from balanced default")
	}
}
