package exec

import (
	"sync"
	"testing"

	"repro/internal/codelet"
	"repro/internal/plan"
)

func TestScheduleCacheLRU(t *testing.T) {
	builds := 0
	build := func(n int) func() *Schedule {
		return func() *Schedule {
			builds++
			return Compile(plan.Balanced(n, plan.MaxLeafLog))
		}
	}
	c := NewScheduleCache(2)
	s4 := c.Get(4, build(4))
	if got := c.Get(4, build(4)); got != s4 {
		t.Fatal("second Get rebuilt the schedule")
	}
	if builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}
	c.Get(5, build(5))
	c.Get(4, build(4)) // touch 4 so 5 is now least recently used
	c.Get(6, build(6)) // evicts 5
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if builds != 3 {
		t.Fatalf("builds = %d, want 3", builds)
	}
	c.Get(5, build(5)) // miss again: 5 was evicted
	if builds != 4 {
		t.Fatalf("builds = %d, want 4 after eviction", builds)
	}
	c.Get(4, build(4)) // 4 was the LRU entry when 5 came back
	if builds != 5 {
		t.Fatalf("builds = %d, want 5", builds)
	}

	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
}

func TestScheduleCacheConcurrent(t *testing.T) {
	c := NewScheduleCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := 1 + (g+i)%10
				s := c.Get(n, func() *Schedule {
					return Compile(plan.Balanced(n, plan.MaxLeafLog))
				})
				if s.Log2Size() != n {
					t.Errorf("got schedule for %d, want %d", s.Log2Size(), n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache grew past its capacity: %d", c.Len())
	}
}

func TestForSizeCachesDefaultPlan(t *testing.T) {
	ResetTunedPlans()
	a := ForSize(10)
	b := ForSize(10)
	if a != b {
		t.Fatal("ForSize rebuilt the default schedule")
	}
	want := Compile(plan.Balanced(10, plan.MaxLeafLog))
	if a.NumStages() != want.NumStages() || a.Size() != want.Size() {
		t.Fatalf("ForSize schedule differs from balanced default")
	}
}

func TestScheduleCacheStats(t *testing.T) {
	c := NewScheduleCache(2)
	build := func(n int) func() *Schedule {
		return func() *Schedule { return Compile(plan.Balanced(n, plan.MaxLeafLog)) }
	}
	c.Get(4, build(4)) // miss
	c.Get(4, build(4)) // hit
	c.Get(5, build(5)) // miss
	c.Get(6, build(6)) // miss, evicts 4 (LRU)
	c.Get(4, build(4)) // miss again, evicts 5
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want {Hits:1 Misses:4 Evictions:2}", st)
	}
	c.Purge()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("stats after Purge = %+v, want zero", st)
	}
}

// The concurrent-miss race path: two goroutines miss the same size, both
// build, one build wins.  Both lookups count as misses, exactly one entry
// exists, and later lookups hit it.
func TestScheduleCacheStatsConcurrentMiss(t *testing.T) {
	c := NewScheduleCache(4)
	inBuild := make(chan struct{}, 2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*Schedule, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get(7, func() *Schedule {
				inBuild <- struct{}{}
				<-release // hold both goroutines inside build simultaneously
				return Compile(plan.Balanced(7, plan.MaxLeafLog))
			})
		}(i)
	}
	<-inBuild
	<-inBuild
	close(release)
	wg.Wait()
	if results[0] != results[1] {
		t.Fatal("racing builders got different schedules")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want {Hits:0 Misses:2}", st)
	}
	c.Get(7, func() *Schedule { t.Fatal("unexpected rebuild"); return nil })
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("hits after cached lookup = %d, want 1", st.Hits)
	}
}

func TestScheduleCacheWarm(t *testing.T) {
	c := NewScheduleCache(2)
	tuned := Compile(plan.MustParse("split[small[4],small[5]]"))
	c.Warm(9, tuned)
	got := c.Get(9, func() *Schedule { t.Fatal("Warm entry missed"); return nil })
	if got != tuned {
		t.Fatal("Get did not serve the warmed schedule")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want a pure hit", st)
	}
	// Warming an existing size replaces the schedule in place.
	tuned2 := Compile(plan.Balanced(9, 6))
	c.Warm(9, tuned2)
	if got := c.Get(9, func() *Schedule { return nil }); got != tuned2 {
		t.Fatal("re-Warm did not replace the schedule")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

// TestScheduleCacheWarmRejectsMismatch is the regression test for the
// cache-poisoning bug: a Warm whose schedule size disagrees with the
// key used to permanently break ForSize/Transform at that size (every
// Get served a schedule that fails its length check).  Mismatched and
// nil warms must be rejected and leave the cache serving correctly.
func TestScheduleCacheWarmRejectsMismatch(t *testing.T) {
	c := NewScheduleCache(4)
	nine := Compile(plan.MustParse("split[small[4],small[5]]")) // 2^9
	if err := c.Warm(10, nine); err == nil {
		t.Fatal("size-10 warm with a 2^9 schedule accepted")
	}
	if err := c.Warm(9, nil); err == nil {
		t.Fatal("nil warm accepted")
	}
	if c.Len() != 0 {
		t.Fatalf("rejected warms left %d entries behind", c.Len())
	}
	// The poisoned-size lookup still builds (and serves) the right size.
	got := c.Get(10, func() *Schedule { return Compile(plan.Balanced(10, plan.MaxLeafLog)) })
	if got.Log2Size() != 10 {
		t.Fatalf("Get(10) served a 2^%d schedule", got.Log2Size())
	}
	if err := RunBatch(got, [][]float64{make([]float64, 1<<10)}); err != nil {
		t.Fatalf("serving path broken after rejected warm: %v", err)
	}
	// A matching warm still works.
	if err := c.Warm(9, nine); err != nil {
		t.Fatalf("valid warm rejected: %v", err)
	}
}

// TestUseTunedPlanFullRoundTripsSoAMin pins the tuned batch crossover:
// the threshold survives both the warmed schedule and a post-eviction
// recompile of the tuned plan.
func TestUseTunedPlanFullRoundTripsSoAMin(t *testing.T) {
	ResetTunedPlans()
	defer ResetTunedPlans()
	p := plan.MustParse("split[small[6],small[8]]")
	if err := UseTunedPlanFull(p, codelet.DefaultPolicy(), 4); err != nil {
		t.Fatal(err)
	}
	if got := ForSize(14).SoAMinBatch(); got != 4 {
		t.Fatalf("warmed schedule carries SoAMinBatch %d, want 4", got)
	}
	defaultCache.Purge()
	if got := ForSize(14).SoAMinBatch(); got != 4 {
		t.Fatalf("recompiled tuned schedule carries SoAMinBatch %d, want 4", got)
	}
}

func TestForSizePrefersTunedPlan(t *testing.T) {
	ResetTunedPlans()
	defer ResetTunedPlans()
	tuned := plan.MustParse("split[small[4],small[6]]")
	if err := UseTunedPlan(tuned); err != nil {
		t.Fatal(err)
	}
	if p, ok := TunedPlan(10); !ok || !p.Equal(tuned) {
		t.Fatalf("TunedPlan(10) = %v, %v", p, ok)
	}
	got := ForSize(10)
	want := Compile(tuned)
	if got.String() != want.String() {
		t.Fatalf("ForSize serves %s, want tuned %s", got, want)
	}
	// The registration outlives cache eviction: after a purge, ForSize
	// still rebuilds from the tuned plan, not the balanced default.
	defaultCache.Purge()
	if got := ForSize(10); got.String() != want.String() {
		t.Fatalf("after eviction ForSize serves %s, want tuned %s", got, want)
	}
	ResetTunedPlans()
	balanced := Compile(plan.Balanced(10, plan.MaxLeafLog))
	if got := ForSize(10); got.String() != balanced.String() {
		t.Fatalf("after reset ForSize serves %s, want balanced %s", got, balanced)
	}
}

func TestUseTunedPlanRejectsInvalid(t *testing.T) {
	if err := UseTunedPlan(nil); err == nil {
		t.Fatal("nil plan accepted")
	}
	if err := UseTunedPlan(new(plan.Node)); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

// TestUseTunedPlanWithStageBackends pins the per-stage backend half of
// the registration: the pins land on the warmed schedule, survive a
// post-eviction recompile, round-trip through TunedConfigFor, and a
// malformed vector rejects the registration without publishing anything.
func TestUseTunedPlanWithStageBackends(t *testing.T) {
	ResetTunedPlans()
	defer ResetTunedPlans()
	p := plan.MustParse("split[small[6],small[8]]")
	pins := []codelet.Backend{codelet.ScalarBackend, codelet.SIMDBackend}
	if err := UseTunedPlanWith(p, TunedConfig{StageBackends: pins}); err != nil {
		t.Fatal(err)
	}
	check := func(when string) {
		got := ForSize(14).StageBackends()
		if len(got) != len(pins) {
			t.Fatalf("%s: stage backends %v, want %v", when, got, pins)
		}
		for i := range pins {
			if got[i] != pins[i] {
				t.Fatalf("%s: stage backends %v, want %v", when, got, pins)
			}
		}
	}
	check("warmed")
	defaultCache.Purge()
	check("recompiled")
	if cfg, ok := TunedConfigFor(14); !ok || len(cfg.StageBackends) != 2 ||
		cfg.StageBackends[0] != codelet.ScalarBackend || cfg.StageBackends[1] != codelet.SIMDBackend {
		t.Fatalf("TunedConfigFor = %+v, %v", cfg, ok)
	}

	// Wrong length and out-of-range values must reject before publication.
	if err := UseTunedPlanWith(p, TunedConfig{StageBackends: pins[:1]}); err == nil {
		t.Fatal("stage-count mismatch accepted")
	}
	if err := UseTunedPlanWith(p, TunedConfig{
		StageBackends: []codelet.Backend{codelet.Backend(99), codelet.ScalarBackend},
	}); err == nil {
		t.Fatal("out-of-range backend accepted")
	}
	check("after rejected registrations")
}
