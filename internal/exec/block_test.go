package exec

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/codelet"
	"repro/internal/plan"
)

// The two block-tier size bounds live in packages that cannot import each
// other; the engine depends on them agreeing.
func TestBlockTierBoundsAgree(t *testing.T) {
	if plan.BlockLeafMax != codelet.BlockMaxLog {
		t.Fatalf("plan.BlockLeafMax = %d, codelet.BlockMaxLog = %d: the block tiers disagree",
			plan.BlockLeafMax, codelet.BlockMaxLog)
	}
}

// blockLeafPlans returns, for block size bl, the calling contexts the
// engine must serve a block leaf in: alone, rightmost (stride-1 / contig
// form), leftmost (strided form at large S), and sandwiched.
func blockLeafPlans(bl int) []*plan.Node {
	return []*plan.Node{
		plan.Leaf(bl),
		plan.Split(plan.Leaf(2), plan.Leaf(bl)),
		plan.Split(plan.Leaf(bl), plan.Leaf(2)),
		plan.Split(plan.Leaf(1), plan.Leaf(bl), plan.Leaf(1)),
	}
}

// TestBlockLeafPlansBitwiseEqualInterpret is the acceptance property of
// the block tier: for every block leaf size and calling context, under
// every variant policy, compiled execution — sequential, parallel, batch
// — stays bitwise-equal to the tree-walking interpreter, in both element
// types.
func TestBlockLeafPlansBitwiseEqualInterpret(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	for bl := plan.MaxLeafLog + 1; bl <= plan.BlockLeafMax; bl++ {
		for _, p := range blockLeafPlans(bl) {
			n := p.Log2Size()
			x := randomVector(1<<n, rng)
			want := append([]float64(nil), x...)
			if err := Interpret(p, want); err != nil {
				t.Fatal(err)
			}
			x32 := make([]float32, 1<<n)
			for i := range x32 {
				x32[i] = float32(rng.Float64()*2 - 1)
			}
			want32 := append([]float32(nil), x32...)
			if err := Interpret(p, want32); err != nil {
				t.Fatal(err)
			}
			for name, pol := range variantPolicies {
				sched, err := NewScheduleWith(p, pol)
				if err != nil {
					t.Fatal(err)
				}
				got := append([]float64(nil), x...)
				MustRun(sched, got)
				assertSame(t, name+"/run", n, p, got, want)

				for _, workers := range []int{2, 5} {
					got = append([]float64(nil), x...)
					if err := RunParallel(sched, got, workers); err != nil {
						t.Fatal(err)
					}
					assertSame(t, fmt.Sprintf("%s/parallel=%d", name, workers), n, p, got, want)
				}

				batch := [][]float64{append([]float64(nil), x...), append([]float64(nil), x...)}
				if err := RunBatch(sched, batch); err != nil {
					t.Fatal(err)
				}
				assertSame(t, name+"/batch", n, p, batch[0], want)
				assertSame(t, name+"/batch", n, p, batch[1], want)

				got32 := append([]float32(nil), x32...)
				MustRun(sched, got32)
				for i := range got32 {
					if got32[i] != want32[i] {
						t.Fatalf("%s n=%d plan %s: float32 index %d = %v, want %v", name, n, p, i, got32[i], want32[i])
					}
				}
				got32 = append([]float32(nil), x32...)
				if err := RunParallel(sched, got32, 3); err != nil {
					t.Fatal(err)
				}
				for i := range got32 {
					if got32[i] != want32[i] {
						t.Fatalf("%s n=%d plan %s: float32 parallel index %d = %v, want %v", name, n, p, i, got32[i], want32[i])
					}
				}
			}
		}
	}
}

// Block stages inside a non-unit outer stride must fall back to the
// strided block kernel and agree with the gathered reference.
func TestBlockLeafRunStrided(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 53))
	p := plan.Split(plan.Leaf(2), plan.Leaf(9))
	n := p.Log2Size()
	sched := Compile(p)
	for _, cs := range []struct{ base, stride int }{{0, 1}, {3, 2}, {1, 3}} {
		buf := randomVector(cs.base+(1<<n-1)*cs.stride+2, rng)
		gathered := make([]float64, 1<<n)
		for i := range gathered {
			gathered[i] = buf[cs.base+i*cs.stride]
		}
		if err := Interpret(p, gathered); err != nil {
			t.Fatal(err)
		}
		if err := RunStrided(sched, buf, cs.base, cs.stride); err != nil {
			t.Fatal(err)
		}
		for i := range gathered {
			if got := buf[cs.base+i*cs.stride]; got != gathered[i] {
				t.Fatalf("base=%d stride=%d: index %d = %v, want %v", cs.base, cs.stride, i, got, gathered[i])
			}
		}
	}
}

// TestCompileBlockStageCount pins the pass-count arithmetic the block
// tier exists for: at n = 16..20, raising the leaf ceiling into the block
// range turns the 3-4 full-vector stages of codelet-leaved plans into 2.
func TestCompileBlockStageCount(t *testing.T) {
	cases := []struct {
		n          int
		plan       *plan.Node
		stages     int
		blockM     int // expected kernel log-size of the block stage (0 = none)
		blockV     codelet.Variant
		baseStages int // stages of the unrolled-tier balanced plan at the same n
	}{
		{16, plan.Split(plan.Leaf(2), plan.Leaf(14)), 2, 14, codelet.Contiguous, 2},
		{17, plan.Split(plan.Leaf(3), plan.Leaf(14)), 2, 14, codelet.Contiguous, 3},
		{18, plan.Balanced(18, plan.BlockLeafMax), 2, 9, codelet.Contiguous, 4},
		{19, plan.Split(plan.Leaf(5), plan.Leaf(14)), 2, 14, codelet.Contiguous, 4},
		{20, plan.Split(plan.Leaf(6), plan.Leaf(14)), 2, 14, codelet.Contiguous, 4},
	}
	for _, c := range cases {
		s := Compile(c.plan)
		if s.NumStages() != c.stages {
			t.Errorf("n=%d plan %s: %d stages, want %d (%s)", c.n, c.plan, s.NumStages(), c.stages, s)
		}
		base := Compile(plan.Balanced(c.n, plan.MaxLeafLog))
		if base.NumStages() != c.baseStages {
			t.Errorf("n=%d unrolled balanced: %d stages, want %d (%s)", c.n, base.NumStages(), c.baseStages, base)
		}
		if c.blockM > 0 {
			// The rightmost block leaf must compile to the contiguous
			// window form at S == 1 (other block stages, if any, take the
			// strided fallback).
			found := false
			for _, st := range s.Stages() {
				if st.M == c.blockM && st.S == 1 && st.V == c.blockV {
					found = true
				}
			}
			if !found {
				t.Errorf("n=%d plan %s: no S=1 %v stage with block kernel 2^%d (%s)", c.n, c.plan, c.blockV, c.blockM, s)
			}
		}
	}
}

// A block leaf in a non-rightmost position compiles to the strided block
// form — the fallback that keeps every calling context correct.
func TestCompileBlockLeftStageIsStrided(t *testing.T) {
	s := Compile(plan.Split(plan.Leaf(10), plan.Leaf(4)))
	st := s.Stages()[1] // children flatten last-to-first: stage 1 is the block leaf
	if st.M != 10 || st.S != 16 || st.V != codelet.Strided {
		t.Fatalf("left block stage = M=%d S=%d %v, want M=10 S=16 strided (%s)", st.M, st.S, st.V, s)
	}
}
