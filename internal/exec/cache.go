package exec

import (
	"sync"

	"repro/internal/plan"
)

// ScheduleCache is a size-keyed LRU cache of compiled schedules — the
// library's FFTW-"wisdom" analogue.  Transform/Transform32 answer repeated
// default-size traffic from it instead of reconstructing plan.Balanced and
// recompiling on every call.  Schedules are immutable, so a cached
// schedule is returned to concurrent callers without copying; one entry
// serves both the float64 and float32 engines.
type ScheduleCache struct {
	mu      sync.Mutex
	cap     int
	entries map[int]*cacheEntry // keyed by transform log-size
	head    *cacheEntry         // most recently used
	tail    *cacheEntry         // least recently used
}

type cacheEntry struct {
	n          int
	sched      *Schedule
	prev, next *cacheEntry
}

// NewScheduleCache returns an empty cache bounded to cap schedules
// (cap <= 0 selects a default of 32 sizes — enough for every power of two
// a 32-bit index space admits).
func NewScheduleCache(cap int) *ScheduleCache {
	if cap <= 0 {
		cap = 32
	}
	return &ScheduleCache{cap: cap, entries: make(map[int]*cacheEntry, cap)}
}

// Get returns the cached schedule for log-size n, building one with build
// on a miss.  The build runs outside the lock; if two goroutines miss the
// same size concurrently, one of the two identical schedules wins.
func (c *ScheduleCache) Get(n int, build func() *Schedule) *Schedule {
	c.mu.Lock()
	if e, ok := c.entries[n]; ok {
		c.moveToFront(e)
		s := e.sched
		c.mu.Unlock()
		return s
	}
	c.mu.Unlock()

	s := build()

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[n]; ok { // lost the race: keep the first build
		c.moveToFront(e)
		return e.sched
	}
	e := &cacheEntry{n: n, sched: s}
	c.entries[n] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.n)
	}
	return s
}

// Len returns the number of cached schedules.
func (c *ScheduleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached schedule.
func (c *ScheduleCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[int]*cacheEntry, c.cap)
	c.head, c.tail = nil, nil
}

func (c *ScheduleCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *ScheduleCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ScheduleCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// defaultCache backs ForSize; 32 sizes cover every transform length the
// engine can address.
var defaultCache = NewScheduleCache(32)

// ForSize returns the process-wide cached schedule of the default
// (balanced, codelet-leaved) plan for WHT(2^n).
func ForSize(n int) *Schedule {
	return defaultCache.Get(n, func() *Schedule {
		return Compile(plan.Balanced(n, plan.MaxLeafLog))
	})
}
