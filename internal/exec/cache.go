package exec

import (
	"fmt"
	"sync"

	"repro/internal/codelet"
	"repro/internal/plan"
)

// ScheduleCache is a size-keyed LRU cache of compiled schedules — the
// in-memory half of the library's FFTW-"wisdom" story.  Transform/
// Transform32 answer repeated default-size traffic from it instead of
// reconstructing a plan and recompiling on every call.  Schedules are
// immutable, so a cached schedule is returned to concurrent callers
// without copying; one entry serves both the float64 and float32 engines.
type ScheduleCache struct {
	mu      sync.Mutex
	cap     int
	entries map[int]*cacheEntry // keyed by transform log-size
	head    *cacheEntry         // most recently used
	tail    *cacheEntry         // least recently used
	stats   CacheStats
}

// CacheStats counts cache traffic since construction (or the last Purge).
// A lookup that loses the concurrent-build race still counts as a single
// miss: the caller paid for a build even though another goroutine's
// schedule won.
type CacheStats struct {
	Hits      uint64 // lookups served from the cache
	Misses    uint64 // lookups that had to build
	Evictions uint64 // entries dropped by the LRU bound
}

type cacheEntry struct {
	n          int
	sched      *Schedule
	prev, next *cacheEntry
}

// NewScheduleCache returns an empty cache bounded to cap schedules
// (cap <= 0 selects a default of 32 sizes — enough for every power of two
// a 32-bit index space admits).
func NewScheduleCache(cap int) *ScheduleCache {
	if cap <= 0 {
		cap = 32
	}
	return &ScheduleCache{cap: cap, entries: make(map[int]*cacheEntry, cap)}
}

// Get returns the cached schedule for log-size n, building one with build
// on a miss.  The build runs outside the lock; if two goroutines miss the
// same size concurrently, one of the two identical schedules wins.
func (c *ScheduleCache) Get(n int, build func() *Schedule) *Schedule {
	c.mu.Lock()
	if e, ok := c.entries[n]; ok {
		c.stats.Hits++
		c.moveToFront(e)
		s := e.sched
		c.mu.Unlock()
		return s
	}
	c.stats.Misses++
	c.mu.Unlock()

	s := build()

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[n]; ok { // lost the race: keep the first build
		c.moveToFront(e)
		return e.sched
	}
	c.insert(n, s)
	return s
}

// Warm inserts a prebuilt schedule for log-size n as the most recently
// used entry, replacing any cached schedule of that size.  It is the
// seed-from-wisdom path: a tuner (or a loaded wisdom file) plants its
// schedule so the first Get at that size is already a hit.
//
// A schedule whose Log2Size disagrees with n is rejected: accepting it
// would permanently poison every Get/ForSize/Transform at that size
// (each serving call would fail its length check against the
// wrong-sized schedule until the entry is evicted or purged).
func (c *ScheduleCache) Warm(n int, s *Schedule) error {
	if s == nil {
		return fmt.Errorf("exec: cannot warm cache with nil schedule")
	}
	if s.Log2Size() != n {
		return fmt.Errorf("exec: cannot warm size %d with schedule of size %d", n, s.Log2Size())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[n]; ok {
		e.sched = s
		c.moveToFront(e)
		return nil
	}
	c.insert(n, s)
	return nil
}

// insert adds a new entry at the front and enforces the LRU bound.
// Callers hold c.mu.
func (c *ScheduleCache) insert(n int, s *Schedule) {
	e := &cacheEntry{n: n, sched: s}
	c.entries[n] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.n)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *ScheduleCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached schedules.
func (c *ScheduleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached schedule and resets the counters.
func (c *ScheduleCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[int]*cacheEntry, c.cap)
	c.head, c.tail = nil, nil
	c.stats = CacheStats{}
}

func (c *ScheduleCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *ScheduleCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *ScheduleCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// defaultCache backs ForSize; 32 sizes cover every transform length the
// engine can address.
var defaultCache = NewScheduleCache(32)

// tunedPlans maps log-size to the plan (and variant policy) a tuner
// registered as preferred.  ForSize compiles from it instead of
// plan.Balanced, including when the LRU has evicted the compiled schedule
// — a tuned size stays tuned for the life of the process (or until
// ResetTunedPlans).
type tunedEntry struct {
	plan     *plan.Node
	policy   codelet.Policy
	soaMin   int               // batch-width crossover for the SoA tier (see SetSoAMinBatch)
	parMode  ParallelMode      // parallel executor tier (see SetParallelMode)
	backends []codelet.Backend // per-stage backend pins (see SetStageBackends), nil: policy backend
}

// TunedConfig carries every per-size decision a tuner registers alongside
// its winning plan: the variant policy the plan was measured under, the
// SoA batch crossover, the parallel executor tier, and the per-stage
// backend pins.  The zero value is the untuned default for every field.
type TunedConfig struct {
	Policy       codelet.Policy
	SoAMinBatch  int
	ParallelMode ParallelMode
	// StageBackends, when non-nil, pins each compiled stage's codelet
	// backend (length must match the compiled stage count — compilation
	// is deterministic, so a tuner's recorded vector always does).  Nil
	// leaves every stage on the policy backend.
	StageBackends []codelet.Backend
}

var (
	tunedMu    sync.RWMutex
	tunedPlans = map[int]tunedEntry{}
)

// UseTunedPlan registers p (compiled under the default variant policy) as
// the preferred plan behind ForSize for its size; see UseTunedPlanPolicy.
func UseTunedPlan(p *plan.Node) error {
	return UseTunedPlanPolicy(p, codelet.DefaultPolicy())
}

// UseTunedPlanPolicy registers p, compiled under pol, as the preferred
// plan behind ForSize for its size and seeds the default cache with its
// compiled schedule, so the next Transform at that length is served from
// the tuned plan with zero build work.  The plan is validated and
// compiled before anything is published.
func UseTunedPlanPolicy(p *plan.Node, pol codelet.Policy) error {
	return UseTunedPlanFull(p, pol, 0)
}

// UseTunedPlanFull is UseTunedPlanPolicy carrying the tuner's batch
// crossover decision as well: soaMinBatch is planted on the compiled
// schedule (and re-applied whenever ForSize recompiles the tuned plan),
// so batch traffic at that size picks the SoA tier exactly where the
// sweep measured it faster.  soaMinBatch 0 keeps the default heuristic,
// negative disables SoA selection.
func UseTunedPlanFull(p *plan.Node, pol codelet.Policy, soaMinBatch int) error {
	return UseTunedPlanWith(p, TunedConfig{Policy: pol, SoAMinBatch: soaMinBatch})
}

// UseTunedPlanWith registers p compiled under the full tuned
// configuration — variant policy, SoA batch crossover, and parallel
// executor tier — and seeds the default cache with the compiled schedule.
// Every field is re-applied whenever ForSize recompiles the tuned plan
// after an LRU eviction, so the decisions survive for the life of the
// process.
func UseTunedPlanWith(p *plan.Node, cfg TunedConfig) error {
	s, err := NewScheduleWith(p, cfg.Policy)
	if err != nil {
		return err
	}
	s.SetSoAMinBatch(cfg.SoAMinBatch)
	s.SetParallelMode(cfg.ParallelMode)
	var backends []codelet.Backend
	if len(cfg.StageBackends) > 0 {
		// Validated before anything is published: a stage-count mismatch
		// or an unknown backend rejects the registration outright rather
		// than serving a half-applied tuning.
		if err := s.SetStageBackends(cfg.StageBackends); err != nil {
			return err
		}
		backends = append([]codelet.Backend(nil), cfg.StageBackends...)
	}
	// Publish the registry entry BEFORE warming the cache.  In the other
	// order there is a window where the warmed schedule has been inserted
	// (and can immediately be evicted under LRU pressure) while the
	// registry still holds the previous plan: a concurrent ForSize
	// rebuilding in that window caches a stale schedule that then serves
	// every call at this size until the next eviction.  Registry-first
	// closes the window — a rebuild racing the Warm compiles from the new
	// entry — and cannot publish a half-validated tuning, because every
	// failure path (compile, backends) has already returned above and
	// Warm with the schedule's own Log2Size cannot fail.
	tunedMu.Lock()
	tunedPlans[s.Log2Size()] = tunedEntry{
		plan: p, policy: cfg.Policy, soaMin: cfg.SoAMinBatch, parMode: cfg.ParallelMode,
		backends: backends,
	}
	tunedMu.Unlock()
	if err := defaultCache.Warm(s.Log2Size(), s); err != nil {
		// Unreachable (s is non-nil and keyed by its own size), but if it
		// ever fires, withdraw the registration rather than leaving the
		// registry and cache disagreeing.
		tunedMu.Lock()
		delete(tunedPlans, s.Log2Size())
		tunedMu.Unlock()
		return err
	}
	return nil
}

// TunedPlan returns the plan registered for log-size n, if any.
func TunedPlan(n int) (*plan.Node, bool) {
	tunedMu.RLock()
	defer tunedMu.RUnlock()
	e, ok := tunedPlans[n]
	return e.plan, ok
}

// TunedPolicy returns the variant policy registered alongside the tuned
// plan for log-size n (the default policy when the size is untuned).
func TunedPolicy(n int) (codelet.Policy, bool) {
	tunedMu.RLock()
	defer tunedMu.RUnlock()
	e, ok := tunedPlans[n]
	return e.policy, ok
}

// TunedConfigFor returns the full tuned configuration registered for
// log-size n (the zero config when the size is untuned).
func TunedConfigFor(n int) (TunedConfig, bool) {
	tunedMu.RLock()
	defer tunedMu.RUnlock()
	e, ok := tunedPlans[n]
	cfg := TunedConfig{Policy: e.policy, SoAMinBatch: e.soaMin, ParallelMode: e.parMode}
	if len(e.backends) > 0 {
		cfg.StageBackends = append([]codelet.Backend(nil), e.backends...)
	}
	return cfg, ok
}

// ResetTunedPlans drops every registered tuned plan and purges the
// default schedule cache, restoring the untuned balanced defaults (used
// by tests and by benchmarks that need an untuned baseline).
func ResetTunedPlans() {
	tunedMu.Lock()
	tunedPlans = map[int]tunedEntry{}
	tunedMu.Unlock()
	defaultCache.Purge()
}

// DefaultCacheStats returns the traffic counters of the process-wide
// schedule cache behind Transform/Transform32/ForSize.
func DefaultCacheStats() CacheStats {
	return defaultCache.Stats()
}

// ForSize returns the process-wide cached schedule for WHT(2^n): the
// tuned plan compiled under its tuned variant policy when one has been
// registered (UseTunedPlanPolicy, typically via a wisdom file), the
// balanced codelet-leaved default otherwise.
func ForSize(n int) *Schedule {
	return defaultCache.Get(n, func() *Schedule {
		tunedMu.RLock()
		e, ok := tunedPlans[n]
		tunedMu.RUnlock()
		if ok {
			s := CompileWith(e.plan, e.policy)
			s.SetSoAMinBatch(e.soaMin)
			s.SetParallelMode(e.parMode)
			if len(e.backends) > 0 {
				// Compilation is deterministic and the vector was validated
				// against this plan+policy at registration, so re-applying
				// after an LRU eviction cannot fail.
				if err := s.SetStageBackends(e.backends); err != nil {
					panic(err)
				}
			}
			return s
		}
		return Compile(plan.Balanced(n, plan.MaxLeafLog))
	})
}
