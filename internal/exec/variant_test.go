package exec

import (
	"math/rand/v2"
	"testing"

	"repro/internal/codelet"
	"repro/internal/plan"
)

// variantPolicies is the policy grid the equivalence tests sweep: the
// default (contig + il), strided-only (the legacy engine), contig-only,
// and an aggressive interleave-everything policy that exercises the IL
// path on every S > 1 stage.
var variantPolicies = map[string]codelet.Policy{
	"default":      codelet.DefaultPolicy(),
	"strided-only": {StridedOnly: true},
	"contig-only":  {ILMinS: -1},
	"il-all":       {ILMinS: 2},
	"fused":        {ILFuse: true},
	"fused-il-all": {ILMinS: 2, ILFuse: true},
}

// TestVariantDispatchBitwiseEqualsInterpret is the acceptance property of
// the variant engine: under every selection policy, compiled execution —
// sequential, parallel at several worker counts, and batch — stays
// bitwise-equal to the strided tree-walking interpreter, because all
// variants realize the identical butterfly network.
func TestVariantDispatchBitwiseEqualsInterpret(t *testing.T) {
	s := plan.NewSampler(17, plan.MaxLeafLog)
	rng := rand.New(rand.NewPCG(21, 22))
	for _, n := range []int{1, 4, 9, 13, 15} {
		for trial := 0; trial < 6; trial++ {
			p := s.Plan(n)
			x := randomVector(1<<n, rng)
			want := append([]float64(nil), x...)
			if err := Interpret(p, want); err != nil {
				t.Fatal(err)
			}
			for name, pol := range variantPolicies {
				sched, err := NewScheduleWith(p, pol)
				if err != nil {
					t.Fatal(err)
				}
				got := append([]float64(nil), x...)
				MustRun(sched, got)
				assertSame(t, name+"/run", n, p, got, want)

				for _, workers := range []int{2, 5} {
					got = append([]float64(nil), x...)
					if err := RunParallel(sched, got, workers); err != nil {
						t.Fatal(err)
					}
					assertSame(t, name+"/parallel", n, p, got, want)
				}

				batch := [][]float64{append([]float64(nil), x...), append([]float64(nil), x...)}
				if err := RunBatch(sched, batch); err != nil {
					t.Fatal(err)
				}
				assertSame(t, name+"/batch", n, p, batch[0], want)
				assertSame(t, name+"/batch", n, p, batch[1], want)
			}
		}
	}
}

// Float32 takes the same dispatch paths; sweep it too (the satellite
// property test covers the kernels, this covers the engine wiring).
func TestVariantDispatchFloat32(t *testing.T) {
	s := plan.NewSampler(19, plan.MaxLeafLog)
	rng := rand.New(rand.NewPCG(23, 24))
	for _, n := range []int{3, 10, 14} {
		p := s.Plan(n)
		x := make([]float32, 1<<n)
		for i := range x {
			x[i] = float32(rng.Float64()*2 - 1)
		}
		want := append([]float32(nil), x...)
		if err := Interpret(p, want); err != nil {
			t.Fatal(err)
		}
		for name, pol := range variantPolicies {
			sched, err := NewScheduleWith(p, pol)
			if err != nil {
				t.Fatal(err)
			}
			got := append([]float32(nil), x...)
			MustRun(sched, got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d plan %s: float32 index %d = %v, want %v", name, n, p, i, got[i], want[i])
				}
			}
		}
	}
}

// RunStrided at stride 1 must use the variant path and at stride > 1 the
// strided fallback; both must agree with the gathered reference.
func TestVariantRunStrided(t *testing.T) {
	const n = 9
	p := plan.Balanced(n, 4)
	rng := rand.New(rand.NewPCG(25, 26))
	for name, pol := range variantPolicies {
		sched, err := NewScheduleWith(p, pol)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range []struct{ base, stride int }{{0, 1}, {3, 1}, {2, 3}, {1, 8}} {
			buf := randomVector(cs.base+(1<<n-1)*cs.stride+2, rng)
			gathered := make([]float64, 1<<n)
			for i := range gathered {
				gathered[i] = buf[cs.base+i*cs.stride]
			}
			if err := Interpret(p, gathered); err != nil {
				t.Fatal(err)
			}
			if err := RunStrided(sched, buf, cs.base, cs.stride); err != nil {
				t.Fatal(err)
			}
			for i := range gathered {
				if got := buf[cs.base+i*cs.stride]; got != gathered[i] {
					t.Fatalf("%s base=%d stride=%d: index %d strided %v want %v",
						name, cs.base, cs.stride, i, got, gathered[i])
				}
			}
		}
	}
}

// Compile must pick the policy's variant per stage shape.
func TestCompileSelectsVariants(t *testing.T) {
	sched := Compile(plan.MustParse("split[small[4],split[small[2],small[8]]]"))
	wants := []codelet.Variant{
		codelet.Contiguous,  // [I64 x W2^8 x I1]
		codelet.Interleaved, // [I16 x W2^2 x I256]
		codelet.Interleaved, // [I1 x W2^4 x I1024]
	}
	stages := sched.Stages()
	if len(stages) != len(wants) {
		t.Fatalf("%d stages, want %d (%s)", len(stages), len(wants), sched)
	}
	for i, st := range stages {
		if st.V != wants[i] {
			t.Errorf("stage %d (%+v): variant %v, want %v", i, st, st.V, wants[i])
		}
	}
	if got := sched.Policy(); got != codelet.DefaultPolicy() {
		t.Errorf("Policy() = %+v, want default", got)
	}
}

// Tuned-plan registration must round-trip the policy through ForSize.
func TestUseTunedPlanPolicy(t *testing.T) {
	defer ResetTunedPlans()
	ResetTunedPlans()
	const n = 10
	p := plan.RightRecursive(n)
	pol := codelet.Policy{StridedOnly: true}
	if err := UseTunedPlanPolicy(p, pol); err != nil {
		t.Fatal(err)
	}
	if got, ok := TunedPolicy(n); !ok || got != pol {
		t.Fatalf("TunedPolicy(%d) = %+v, %v; want %+v, true", n, got, ok, pol)
	}
	sched := ForSize(n)
	if sched.Policy() != pol {
		t.Fatalf("ForSize compiled under %+v, want %+v", sched.Policy(), pol)
	}
	for _, st := range sched.Stages() {
		if st.V != codelet.Strided {
			t.Fatalf("stage %+v not strided under StridedOnly policy", st)
		}
	}
}

func assertSame(t *testing.T, path string, n int, p *plan.Node, got, want []float64) {
	t.Helper()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s n=%d plan %s: index %d = %v, want %v (bitwise)", path, n, p, i, got[i], want[i])
		}
	}
}
