package exec

import (
	"fmt"

	"repro/internal/codelet"
	"repro/internal/plan"
)

// Segmented schedules.
//
// A flat schedule sweeps the whole 2^n vector once per stage.  A
// segmented schedule regroups the same butterfly DAG into an ordered
// list of segments, each replicated over every aligned 2^W window of
// the vector: a StageRunSegment runs a window-local stage list (the
// flat schedule of one phase of the plan's two-phase form), and a
// TransposeSegment performs the explicit blocked transpose separating
// phases, scattering each window — viewed as a 2^P x 2^Q row-major
// matrix — into the store's auxiliary plane, followed by a plane flip.
// Transposes come in pairs (out and back), so the result always ends in
// the primary plane.
//
// The stage shapes inside a StageRunSegment are window-local: a stage
// (M, R, S) with R*S*2^M == 2^W runs at base w<<W for every window w.
// Summed over the 2^(n-W) windows this is exactly the flat stage
// (M, R<<(n-W), S) of the in-RAM twin, so the butterfly work — kernel
// calls, element pairs, add/sub order — is identical; only the layout
// the high-phase stages see differs (transposed, hence contiguous),
// and kernel variants are bitwise-equal by the codelet contract.
// Segmented execution is therefore bitwise-equal to the flat schedule
// of the source plan on every input.

// SegmentKind discriminates the two segment forms.
type SegmentKind uint8

const (
	// StageRunSegment runs a window-local stage list over every 2^W
	// window of the vector (windows are independent; the resident
	// working set is one window).
	StageRunSegment SegmentKind = iota
	// TransposeSegment transposes every 2^W window, viewed as a
	// 2^P x 2^Q row-major matrix, into the auxiliary plane (tile by
	// tile), after which the executor flips the planes.
	TransposeSegment
)

// SegTransposeTile is the square tile edge (in elements) of the blocked
// transpose: tiles are read as runs of whole rows and written as runs
// of whole transposed rows, so both sides of the permutation move
// contiguous spans — the shape that keeps an out-of-core store reading
// and writing at stripe granularity instead of element granularity.
// internal/machine mirrors this constant for transpose-segment pricing.
const SegTransposeTile = 128

// Segment is one op of a segmented schedule; see the package comment
// above for the execution semantics of each kind.
type Segment struct {
	Kind SegmentKind

	// W is the log2 window size: one instance of the segment covers an
	// aligned 2^W-element window, replicated 2^(n-W) times across the
	// vector.
	W int

	// Stages is the window-local stage list of a StageRunSegment
	// (R*S*2^M == 2^W for every stage).  Nil for transposes.
	Stages []Stage

	// P and Q shape a TransposeSegment: each window is a 2^P x 2^Q
	// row-major matrix, transposed to 2^Q x 2^P (P+Q == W).  Zero for
	// stage runs.
	P, Q int
}

// Calls returns the kernel calls of one window instance of a stage-run
// segment (0 for transposes).
func (sg Segment) Calls() int {
	total := 0
	for i := range sg.Stages {
		total += sg.Stages[i].Calls()
	}
	return total
}

// Segments returns the compiled segment sequence, or nil for a flat
// (single-segment) schedule — flat schedules carry no segment list at
// all, so every pre-segmentation code path sees exactly the schedule it
// always did.  The slice is owned by the schedule and must not be
// modified.
func (s *Schedule) Segments() []Segment { return s.segments }

// IsSegmented reports whether the schedule carries a multi-segment
// (out-of-core) execution form alongside its flat stage list.
func (s *Schedule) IsSegmented() bool { return len(s.segments) > 0 }

// ResidentLog returns the log2 of the largest window any segment keeps
// resident (the compile-time budget), or the transform size for flat
// schedules.
func (s *Schedule) ResidentLog() int {
	if !s.IsSegmented() {
		return s.n
	}
	return s.residentLog
}

// SegPlan returns the two-phase plan form the schedule was compiled
// from (nil for flat schedules).
func (s *Schedule) SegPlan() *plan.SegNode { return s.segPlan }

// CompileSegmented compiles a two-phase plan form under the default
// variant policy, panicking on invalid input; see NewSegmentedSchedule.
func CompileSegmented(g *plan.SegNode) *Schedule {
	s, err := NewSegmentedSchedule(g)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSegmentedSchedule compiles a two-phase plan form (plan.TwoPhase /
// plan.ParseSeg) into a segmented schedule under the default variant
// policy.
func NewSegmentedSchedule(g *plan.SegNode) (*Schedule, error) {
	return NewSegmentedScheduleWith(g, codelet.DefaultPolicy())
}

// NewSegmentedScheduleWith compiles a two-phase plan form into a
// segmented schedule, selecting each stage's kernel variant with pol
// against its window-local shape.
//
// The schedule's flat stage list is compiled from the form's flattened
// twin (SegNode.Flatten), so every in-RAM entry point — Run, the
// parallel tiers, the batch executors — executes a segmented schedule
// through its ordinary fast paths, bitwise-equal to the segmented
// streaming path.  A fully-local form compiles to a single stage-run
// segment and is returned as a plain flat schedule (Segments() == nil):
// its stage list is byte-for-byte the one NewScheduleWith builds from
// the same plan, so in-RAM behavior is unchanged by construction.
func NewSegmentedScheduleWith(g *plan.SegNode, pol codelet.Policy) (*Schedule, error) {
	if g == nil {
		return nil, fmt.Errorf("exec: nil segmented plan")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	s, err := NewScheduleWith(g.Flatten(), pol)
	if err != nil {
		return nil, err
	}
	var segs []Segment
	compileSeg(g, pol, &segs)
	if len(segs) > 1 {
		s.segments = segs
		s.residentLog = g.MaxLocalLog()
		s.segPlan = g
	}
	return s, nil
}

// compileSeg emits the segment sequence of one segment-tree node.  The
// recursion is compositional because segments address aligned windows
// of the full vector: a segment compiled for a 2^w subproblem applies
// unchanged inside every enclosing context — its windows are simply
// replicated across the larger vector — so phases nest without any
// re-basing.  Execution order is lo phase, transpose out, hi phase
// (on the transposed layout, where its strided accesses have become
// contiguous), transpose back: exactly the factor order of
// WHT(2^(a+b)) = (WHT(2^a) (x) I(2^b)) · (I(2^a) (x) WHT(2^b)).
func compileSeg(g *plan.SegNode, pol codelet.Policy, out *[]Segment) {
	if g.IsLocal() {
		var stages []Stage
		flatten(g.Local(), 1, 1, pol, &stages)
		*out = append(*out, Segment{Kind: StageRunSegment, W: g.Log2Size(), Stages: stages})
		return
	}
	a, b, w := g.Hi().Log2Size(), g.Lo().Log2Size(), g.Log2Size()
	compileSeg(g.Lo(), pol, out)
	*out = append(*out, Segment{Kind: TransposeSegment, W: w, P: a, Q: b})
	compileSeg(g.Hi(), pol, out)
	*out = append(*out, Segment{Kind: TransposeSegment, W: w, P: b, Q: a})
}
