// Package figures regenerates every figure of the paper's evaluation from
// the virtual machine: the canonical-vs-best ratio sweeps (Figures 1–3),
// the random-sample histograms (4–5), the correlation scatters (6–8), the
// (alpha, beta) grid (9) and the percentile pruning curves (10–11).  Each
// generator returns the series the paper plots; cmd/whtrepro prints them
// and writes CSVs, and bench_test.go wraps each one in a benchmark.
package figures

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/machine"
	"repro/internal/plan"
	"repro/internal/search"
	"repro/internal/stats"
)

// Config scales the experiments.  Default() matches the paper's setup;
// Quick() is a scaled-down version for tests and benchmarks.
type Config struct {
	Machine  *machine.Machine
	Seed     uint64
	Workers  int // <= 0 selects GOMAXPROCS
	SmallN   int // in-L1 study size (paper: 9)
	LargeN   int // out-of-L1 study size (paper: 18)
	Samples  int // random plans per study (paper: 10000)
	MaxSize  int // canonical sweep reaches 2^MaxSize (paper: 20)
	Bins     int // histogram bins (paper: 50)
	GridStep float64
	DPArity  int // split arity of the DP search for the "best" plan
}

// Default returns the paper-scale configuration.
func Default() Config {
	return Config{
		Machine:  machine.VirtualOpteron224(),
		Seed:     20070122, // the paper's date
		SmallN:   9,
		LargeN:   18,
		Samples:  10000,
		MaxSize:  20,
		Bins:     50,
		GridStep: 0.05,
		DPArity:  2,
	}
}

// Quick returns a configuration small enough for unit tests and benchmark
// iterations while preserving every regime (the large size still exceeds
// L1).
func Quick() Config {
	cfg := Default()
	cfg.Samples = 250
	cfg.LargeN = 16
	cfg.MaxSize = 14
	return cfg
}

// CanonicalStudy is the shared computation behind Figures 1, 2 and 3: the
// three canonical algorithms against the DP best, per size.
type CanonicalStudy struct {
	Sizes     []int
	BestPlans []string
	// Absolute values for the best plan.
	BestCycles, BestInstr, BestMisses []float64
	// Ratios canonical/best.
	CycleRatio map[string][]float64 // keys: iterative, left, right
	InstrRatio map[string][]float64
	MissRatio  map[string][]float64 // raw ratio; the paper plots log10
}

// Canonicals computes the sweep for n = 1..cfg.MaxSize.
func Canonicals(cfg Config) CanonicalStudy {
	st := CanonicalStudy{
		CycleRatio: map[string][]float64{},
		InstrRatio: map[string][]float64{},
		MissRatio:  map[string][]float64{},
	}
	cost := search.VirtualCycles(cfg.Machine)
	for n := 1; n <= cfg.MaxSize; n++ {
		best := search.DP(n, cost, search.Options{MaxArity: cfg.DPArity})
		plans := map[string]*plan.Node{
			"best":      best.Plan,
			"iterative": plan.Iterative(n),
			"left":      plan.LeftRecursive(n),
			"right":     plan.RightRecursive(n),
		}
		recs := dataset.Collect([]*plan.Node{
			plans["best"], plans["iterative"], plans["left"], plans["right"],
		}, cfg.Machine, cfg.Workers)
		byName := map[string]dataset.Record{
			"best": recs[0], "iterative": recs[1], "left": recs[2], "right": recs[3],
		}
		st.Sizes = append(st.Sizes, n)
		st.BestPlans = append(st.BestPlans, best.Plan.String())
		st.BestCycles = append(st.BestCycles, byName["best"].Cycles)
		st.BestInstr = append(st.BestInstr, float64(byName["best"].Instructions))
		st.BestMisses = append(st.BestMisses, float64(byName["best"].L1Misses))
		for _, name := range []string{"iterative", "left", "right"} {
			r := byName[name]
			b := byName["best"]
			st.CycleRatio[name] = append(st.CycleRatio[name], r.Cycles/b.Cycles)
			st.InstrRatio[name] = append(st.InstrRatio[name], float64(r.Instructions)/float64(b.Instructions))
			st.MissRatio[name] = append(st.MissRatio[name], float64(r.L1Misses)/float64(b.L1Misses))
		}
	}
	return st
}

// CrossoverSize returns the first size at which some recursive canonical
// algorithm outperforms the iterative one in cycles (the paper finds the
// L2 boundary, n = 18), or 0 if there is none in the sweep.
func (st CanonicalStudy) CrossoverSize() int {
	for i, n := range st.Sizes {
		if st.CycleRatio["right"][i] < st.CycleRatio["iterative"][i] ||
			st.CycleRatio["left"][i] < st.CycleRatio["iterative"][i] {
			return n
		}
	}
	return 0
}

// SampleStudy is the shared computation behind Figures 4–11 at one size:
// a random sample measured, filtered and correlated.
type SampleStudy struct {
	N       int
	Records []dataset.Record // raw sample
	Kept    []int            // indices surviving the joint 3*IQR outer fences

	// Filtered series (index-aligned with Kept).
	Cycles, Instr, Misses []float64

	CyclesHist, InstrHist, MissHist stats.Histogram

	RhoInstrCycles float64
	RhoMissCycles  float64

	GridNormalized stats.GridResult // alpha,beta over max-normalized I, M
	GridRaw        stats.GridResult // alpha,beta over raw I, M
	OLSRatio       float64          // unconstrained beta/alpha in raw units
	OLSRho         float64

	PruneInstr    []stats.PruneCurve // Figure 10: model = I
	PruneCombined []stats.PruneCurve // Figure 11: model = alpha*I + beta*M (raw-grid best)
	Prune5Instr   float64            // threshold keeping all of the top 5% (I model)

	Canonical map[string]dataset.Record // iterative/left/right/best points
}

// Sample runs the study at size n.
func Sample(cfg Config, n int) SampleStudy {
	st := SampleStudy{N: n}
	st.Records = dataset.CollectSample(n, cfg.Samples, cfg.Seed+uint64(n), cfg.Machine, cfg.Workers)

	cols, err := dataset.Columns(st.Records, "cycles", "instructions", "l1misses")
	if err != nil {
		panic(err) // column names are compile-time constants
	}
	rawCycles, rawInstr, rawMisses := cols[0], cols[1], cols[2]

	// Joint outer-fence filter (3.0 x IQR, as in the paper).
	inFence := func(xs []float64) map[int]bool {
		keep := map[int]bool{}
		for _, i := range stats.FilterOuterFences(xs, 3.0) {
			keep[i] = true
		}
		return keep
	}
	fc, fi, fm := inFence(rawCycles), inFence(rawInstr), inFence(rawMisses)
	for i := range st.Records {
		if fc[i] && fi[i] && fm[i] {
			st.Kept = append(st.Kept, i)
			st.Cycles = append(st.Cycles, rawCycles[i])
			st.Instr = append(st.Instr, rawInstr[i])
			st.Misses = append(st.Misses, rawMisses[i])
		}
	}

	st.CyclesHist = stats.NewHistogram(st.Cycles, cfg.Bins)
	st.InstrHist = stats.NewHistogram(st.Instr, cfg.Bins)
	st.MissHist = stats.NewHistogram(st.Misses, cfg.Bins)

	st.RhoInstrCycles = mustRho(st.Instr, st.Cycles)
	st.RhoMissCycles = mustRho(st.Misses, st.Cycles)

	st.GridNormalized = stats.GridSearch(st.Instr, st.Misses, st.Cycles, cfg.GridStep, true)
	st.GridRaw = stats.GridSearch(st.Instr, st.Misses, st.Cycles, cfg.GridStep, false)
	st.OLSRatio, st.OLSRho = stats.OptimalRatio(st.Instr, st.Misses, st.Cycles)

	percentiles := []float64{1, 5, 10}
	st.PruneInstr = stats.PruneCurves(st.Instr, st.Cycles, percentiles)
	combined := make([]float64, len(st.Instr))
	alpha, beta := st.GridRaw.Best.Alpha, st.GridRaw.Best.Beta
	for i := range combined {
		combined[i] = alpha*st.Instr[i] + beta*st.Misses[i]
	}
	st.PruneCombined = stats.PruneCurves(combined, st.Cycles, percentiles)
	st.Prune5Instr = stats.PruneThreshold(st.Instr, st.Cycles, 5, 1.0)

	// Canonical and best reference points for the scatter plots.
	best := search.DP(n, search.VirtualCycles(cfg.Machine), search.Options{MaxArity: cfg.DPArity})
	refs := dataset.Collect([]*plan.Node{
		best.Plan, plan.Iterative(n), plan.LeftRecursive(n), plan.RightRecursive(n),
	}, cfg.Machine, cfg.Workers)
	st.Canonical = map[string]dataset.Record{
		"best": refs[0], "iterative": refs[1], "left": refs[2], "right": refs[3],
	}
	return st
}

func mustRho(xs, ys []float64) float64 {
	rho, err := stats.Pearson(xs, ys)
	if err != nil {
		return math.NaN()
	}
	return rho
}

// Summary renders the headline numbers of the study, mirroring the values
// the paper reports in its figure captions.
func (st SampleStudy) Summary() string {
	return fmt.Sprintf(
		"WHT%d: %d samples (%d kept) rho(I,C)=%.2f rho(M,C)=%.2f grid-best rho=%.2f at (%.2f, %.2f) [normalized] OLS ratio=%.1f rho=%.2f",
		st.N, len(st.Records), len(st.Kept),
		st.RhoInstrCycles, st.RhoMissCycles,
		st.GridNormalized.Best.Rho, st.GridNormalized.Best.Alpha, st.GridNormalized.Best.Beta,
		st.OLSRatio, st.OLSRho,
	)
}
