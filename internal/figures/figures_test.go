package figures

import (
	"math"
	"strings"
	"testing"
)

// The full pipeline at Quick scale must reproduce the paper's qualitative
// findings.  These tests are the executable form of EXPERIMENTS.md.

func TestCanonicalSweepQualitative(t *testing.T) {
	cfg := Quick()
	cfg.MaxSize = 16
	st := Canonicals(cfg)
	if len(st.Sizes) != 16 {
		t.Fatalf("%d sizes", len(st.Sizes))
	}
	// Ratios are >= 1 by construction at every size (best is best).
	for _, name := range []string{"iterative", "left", "right"} {
		for i, r := range st.CycleRatio[name] {
			if r < 0.999 {
				t.Errorf("%s cycle ratio %g < 1 at n=%d", name, r, st.Sizes[i])
			}
		}
	}
	// Figure 2: iterative has the lowest instruction ratio of the three
	// canonicals at every size beyond trivial.
	for i, n := range st.Sizes {
		if n < 3 {
			continue
		}
		it := st.InstrRatio["iterative"][i]
		if it > st.InstrRatio["left"][i] || it > st.InstrRatio["right"][i] {
			t.Errorf("n=%d: iterative instr ratio %g not the lowest (left %g right %g)",
				n, it, st.InstrRatio["left"][i], st.InstrRatio["right"][i])
		}
	}
	// Figure 3: beyond the L1 boundary (n=14 at 4-byte elements) the
	// left-recursive algorithm has by far the worst miss ratio.
	last := len(st.Sizes) - 1
	if st.MissRatio["left"][last] < 2*st.MissRatio["right"][last] {
		t.Errorf("left miss ratio %g should dwarf right %g at n=%d",
			st.MissRatio["left"][last], st.MissRatio["right"][last], st.Sizes[last])
	}
	// In-cache sizes have ratio 1 (compulsory misses only).
	if st.MissRatio["left"][7] != 1 || st.MissRatio["iterative"][7] != 1 {
		t.Errorf("n=8 miss ratios should be 1: left=%g iterative=%g",
			st.MissRatio["left"][7], st.MissRatio["iterative"][7])
	}
}

func TestCrossoverAppearsBeyondCacheBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("crossover sweep is expensive")
	}
	cfg := Quick()
	cfg.MaxSize = 19
	st := Canonicals(cfg)
	x := st.CrossoverSize()
	if x == 0 {
		t.Fatal("no iterative/recursive crossover found up to n=19")
	}
	// The paper finds it at the L2 boundary (n=18); with 4-byte elements
	// the virtual machine's L2 holds 2^18, so the crossover must appear
	// in the neighborhood of n in [15, 19] (TLB pressure can pull it in a
	// little earlier).
	if x < 15 || x > 19 {
		t.Errorf("crossover at n=%d, expected near the L2 boundary", x)
	}
	t.Logf("iterative/recursive crossover at n=%d", x)
}

func TestSampleStudySmallSize(t *testing.T) {
	cfg := Quick()
	st := Sample(cfg, cfg.SmallN)
	if len(st.Records) != cfg.Samples {
		t.Fatalf("%d records", len(st.Records))
	}
	if len(st.Kept) < cfg.Samples*8/10 {
		t.Fatalf("IQR filter kept only %d of %d", len(st.Kept), cfg.Samples)
	}
	// Figure 6's headline: in-cache, instructions correlate strongly with
	// cycles (the paper reports 0.96).
	if st.RhoInstrCycles < 0.85 {
		t.Errorf("rho(I,C) = %.3f at n=%d, want > 0.85", st.RhoInstrCycles, st.N)
	}
	// Histograms bin everything kept.
	if st.CyclesHist.Total() != len(st.Kept) && st.CyclesHist.Total() < len(st.Kept)*9/10 {
		t.Errorf("cycles histogram total %d vs kept %d", st.CyclesHist.Total(), len(st.Kept))
	}
	if len(st.PruneInstr) != 3 {
		t.Fatalf("%d prune curves", len(st.PruneInstr))
	}
	// The pruning threshold must be meaningful: below the sample maximum.
	maxI := 0.0
	for _, v := range st.Instr {
		maxI = math.Max(maxI, v)
	}
	if !(st.Prune5Instr <= maxI) {
		t.Errorf("prune threshold %g above max %g", st.Prune5Instr, maxI)
	}
	if !strings.Contains(st.Summary(), "rho(I,C)") {
		t.Error("summary missing correlation")
	}
}

func TestSampleStudyLargeSize(t *testing.T) {
	cfg := Quick()
	small := Sample(cfg, cfg.SmallN)
	large := Sample(cfg, cfg.LargeN)

	// The paper's central quantitative finding, in order:
	// (1) out of cache, the instruction correlation drops;
	if large.RhoInstrCycles >= small.RhoInstrCycles {
		t.Errorf("rho(I,C) should drop out of cache: small %.3f, large %.3f",
			small.RhoInstrCycles, large.RhoInstrCycles)
	}
	// (2) misses correlate positively with cycles out of cache;
	if large.RhoMissCycles <= 0.2 {
		t.Errorf("rho(M,C) = %.3f at n=%d, want positive and substantial", large.RhoMissCycles, large.N)
	}
	// (3) the combined model restores most of the correlation.
	if large.GridNormalized.Best.Rho <= large.RhoInstrCycles+0.02 {
		t.Errorf("combined model rho %.3f does not improve on I alone %.3f",
			large.GridNormalized.Best.Rho, large.RhoInstrCycles)
	}
	if large.GridNormalized.Best.Rho < 0.8 {
		t.Errorf("combined model rho %.3f, want > 0.8", large.GridNormalized.Best.Rho)
	}
	// The OLS ratio must be positive: misses genuinely cost cycles.
	if large.OLSRatio <= 0 {
		t.Errorf("OLS ratio %g, want > 0", large.OLSRatio)
	}
	t.Logf("small: %s", small.Summary())
	t.Logf("large: %s", large.Summary())
}

func TestPruneCurvesApproachLimit(t *testing.T) {
	cfg := Quick()
	st := Sample(cfg, cfg.SmallN)
	for _, c := range st.PruneInstr {
		last := c.Y[len(c.Y)-1]
		want := 1 - c.Percentile/100
		if math.Abs(last-want) > 0.03 {
			t.Errorf("p=%g curve limit %.3f, want %.3f", c.Percentile, last, want)
		}
	}
}

// Jitter ablation: the deterministic per-plan jitter is the virtual
// machine's stand-in for the unexplained variance the paper attributes to
// register spills and pipeline effects.  Without it, the in-cache
// correlation becomes essentially perfect — which is exactly what the
// paper does NOT observe — so this test guards the design choice.
func TestJitterAblation(t *testing.T) {
	cfg := Quick()
	withJitter := Sample(cfg, cfg.SmallN)

	noJitter := Quick()
	mach := *noJitter.Machine
	mach.Cycle.JitterFrac = 0
	noJitter.Machine = &mach
	clean := Sample(noJitter, noJitter.SmallN)

	if clean.RhoInstrCycles <= withJitter.RhoInstrCycles {
		t.Errorf("removing jitter should raise rho: %.3f (with) vs %.3f (without)",
			withJitter.RhoInstrCycles, clean.RhoInstrCycles)
	}
	if clean.RhoInstrCycles < 0.995 {
		t.Errorf("without jitter the in-cache correlation should be ~1, got %.3f", clean.RhoInstrCycles)
	}
}

func TestDefaultAndQuickConfigs(t *testing.T) {
	d := Default()
	if d.SmallN != 9 || d.LargeN != 18 || d.Samples != 10000 || d.MaxSize != 20 || d.Bins != 50 {
		t.Fatalf("default config deviates from the paper: %+v", d)
	}
	q := Quick()
	if q.Samples >= d.Samples || q.LargeN < 15 {
		t.Fatalf("quick config not scaled properly: %+v", q)
	}
}
