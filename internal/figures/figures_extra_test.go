package figures

import (
	"math"
	"testing"

	"repro/internal/plan"
)

func TestSampleStudyCanonicalPoints(t *testing.T) {
	cfg := Quick()
	cfg.Samples = 60
	st := Sample(cfg, cfg.SmallN)
	for _, name := range []string{"best", "iterative", "left", "right"} {
		r, ok := st.Canonical[name]
		if !ok {
			t.Fatalf("missing canonical point %q", name)
		}
		if r.N != cfg.SmallN || r.Cycles <= 0 || r.Instructions <= 0 {
			t.Fatalf("%s point incomplete: %+v", name, r)
		}
		if _, err := plan.Parse(r.Plan); err != nil {
			t.Fatalf("%s plan does not parse: %v", name, err)
		}
	}
	// The DP best must be at least as fast as every canonical at this size.
	best := st.Canonical["best"].Cycles
	for _, name := range []string{"iterative", "left", "right"} {
		if st.Canonical[name].Cycles < best {
			t.Errorf("%s (%g) beats the DP best (%g)", name, st.Canonical[name].Cycles, best)
		}
	}
}

func TestSampleStudySeriesAligned(t *testing.T) {
	cfg := Quick()
	cfg.Samples = 80
	st := Sample(cfg, cfg.SmallN)
	if len(st.Cycles) != len(st.Kept) || len(st.Instr) != len(st.Kept) || len(st.Misses) != len(st.Kept) {
		t.Fatal("filtered series misaligned with kept indices")
	}
	for i, idx := range st.Kept {
		if st.Cycles[i] != st.Records[idx].Cycles {
			t.Fatal("cycles series does not match records")
		}
		if st.Instr[i] != float64(st.Records[idx].Instructions) {
			t.Fatal("instruction series does not match records")
		}
	}
}

func TestGridRawAndNormalizedAgreeOnBestRho(t *testing.T) {
	// Pearson is scale-invariant, so both grids sample the same family of
	// combined models (ratios beta/alpha); their maxima can differ only by
	// grid resolution, not by much.
	cfg := Quick()
	cfg.Samples = 120
	st := Sample(cfg, cfg.LargeN)
	if math.Abs(st.GridRaw.Best.Rho-st.GridNormalized.Best.Rho) > 0.05 {
		t.Errorf("raw best rho %.3f vs normalized %.3f differ beyond grid resolution",
			st.GridRaw.Best.Rho, st.GridNormalized.Best.Rho)
	}
	// Both must dominate the single-variable models.
	if st.GridRaw.Best.Rho < st.RhoInstrCycles || st.GridRaw.Best.Rho < st.RhoMissCycles {
		t.Error("combined model must dominate its components")
	}
}

func TestCanonicalStudyBestPlansParse(t *testing.T) {
	cfg := Quick()
	cfg.MaxSize = 8
	st := Canonicals(cfg)
	for i, s := range st.BestPlans {
		p, err := plan.Parse(s)
		if err != nil {
			t.Fatalf("best plan %q: %v", s, err)
		}
		if p.Log2Size() != st.Sizes[i] {
			t.Fatalf("best plan %q has size %d, want %d", s, p.Log2Size(), st.Sizes[i])
		}
	}
}
